#include "crypto/aes.hh"

#include <cstring>

namespace vg::crypto
{

namespace
{

/** GF(2^8) multiply by x (xtime). */
inline uint8_t
xtime(uint8_t a)
{
    return uint8_t((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

/** Full GF(2^8) multiply (table construction only). */
inline uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; i++) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

inline uint32_t
rotr32(uint32_t x, unsigned n)
{
    // (-n & 31) keeps the left shift in [0, 31]; a plain 32 - n is
    // undefined for n == 0.
    return (x >> (n & 31)) | (x << (-n & 31));
}

} // namespace

namespace detail
{

void
buildAesSboxes(uint8_t sbox[256], uint8_t inv_sbox[256])
{
    // 0x03 generates the multiplicative group of GF(2^8): walk
    // pow3[i] = 3^i once, recording discrete logs, and read every
    // inverse off as 3^(255 - log3[a]). One linear pass replaces the
    // quadratic search for each element's inverse.
    uint8_t pow3[256];
    uint8_t log3[256] = {0};
    uint8_t p = 1;
    for (int i = 0; i < 255; i++) {
        pow3[i] = p;
        log3[p] = uint8_t(i);
        p = uint8_t(p ^ xtime(p)); // p *= 0x03
    }
    pow3[255] = pow3[0];

    for (int i = 0; i < 256; i++) {
        uint8_t x = i ? pow3[255 - log3[i]] : 0;
        uint8_t y = uint8_t(x ^ (uint8_t)(x << 1 | x >> 7) ^
                            (uint8_t)(x << 2 | x >> 6) ^
                            (uint8_t)(x << 3 | x >> 5) ^
                            (uint8_t)(x << 4 | x >> 4) ^ 0x63);
        sbox[i] = y;
        inv_sbox[y] = uint8_t(i);
    }
}

} // namespace detail

namespace
{

struct Tables
{
    uint8_t sbox[256];
    uint8_t inv_sbox[256];
    /** Encrypt round tables: te[0][x] = MixColumn of S[x] at row 0;
     *  te[i] is te[0] rotated right by 8i bits. */
    uint32_t te[4][256];
    /** Decrypt round tables over InvS[x] and InvMixColumns. */
    uint32_t td[4][256];

    Tables()
    {
        detail::buildAesSboxes(sbox, inv_sbox);
        for (int i = 0; i < 256; i++) {
            uint8_t s = sbox[i];
            uint32_t e = (uint32_t(xtime(s)) << 24) |
                         (uint32_t(s) << 16) | (uint32_t(s) << 8) |
                         uint32_t(uint8_t(s ^ xtime(s))); // (2s,s,s,3s)
            uint8_t b = inv_sbox[i];
            uint32_t d = (uint32_t(gmul(b, 14)) << 24) |
                         (uint32_t(gmul(b, 9)) << 16) |
                         (uint32_t(gmul(b, 13)) << 8) |
                         uint32_t(gmul(b, 11)); // (14b,9b,13b,11b)
            for (int r = 0; r < 4; r++) {
                te[r][i] = rotr32(e, unsigned(8 * r));
                td[r][i] = rotr32(d, unsigned(8 * r));
            }
        }
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

inline uint32_t
be32(const uint8_t *p)
{
    return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
           (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

inline void
putBe32(uint8_t *p, uint32_t v)
{
    p[0] = uint8_t(v >> 24);
    p[1] = uint8_t(v >> 16);
    p[2] = uint8_t(v >> 8);
    p[3] = uint8_t(v);
}

/** InvMixColumns of one round-key word, via Td0[S[x]] == IMC(x). */
inline uint32_t
invMixWord(const Tables &t, uint32_t w)
{
    return t.td[0][t.sbox[(w >> 24) & 0xff]] ^
           t.td[1][t.sbox[(w >> 16) & 0xff]] ^
           t.td[2][t.sbox[(w >> 8) & 0xff]] ^
           t.td[3][t.sbox[w & 0xff]];
}

} // namespace

Aes128::Aes128(const AesKey &key, bool fast) : _fast(fast)
{
    const Tables &t = tables();
    for (int i = 0; i < 4; i++) {
        _roundKeys[i] = (uint32_t(key[4 * i]) << 24) |
                        (uint32_t(key[4 * i + 1]) << 16) |
                        (uint32_t(key[4 * i + 2]) << 8) |
                        uint32_t(key[4 * i + 3]);
    }
    for (int i = 4; i < 44; i++) {
        uint32_t temp = _roundKeys[i - 1];
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            temp = (temp << 8) | (temp >> 24);
            temp = (uint32_t(t.sbox[(temp >> 24) & 0xff]) << 24) |
                   (uint32_t(t.sbox[(temp >> 16) & 0xff]) << 16) |
                   (uint32_t(t.sbox[(temp >> 8) & 0xff]) << 8) |
                   uint32_t(t.sbox[temp & 0xff]);
            temp ^= uint32_t(kRcon[i / 4]) << 24;
        }
        _roundKeys[i] = _roundKeys[i - 4] ^ temp;
    }

    // Equivalent inverse cipher: decrypt rounds walk the schedule
    // backwards with InvMixColumns folded into rounds 1..9.
    for (int c = 0; c < 4; c++) {
        _decKeys[c] = _roundKeys[40 + c];
        _decKeys[40 + c] = _roundKeys[c];
    }
    for (int r = 1; r < 10; r++)
        for (int c = 0; c < 4; c++)
            _decKeys[4 * r + c] =
                invMixWord(t, _roundKeys[4 * (10 - r) + c]);
}

// --------------------------------------------------------------------
// Reference rounds (textbook FIPS 197; kept for differential testing).
// --------------------------------------------------------------------

namespace
{

inline void
addRoundKey(uint8_t s[16], const uint32_t *rk)
{
    for (int c = 0; c < 4; c++) {
        s[4 * c] ^= uint8_t(rk[c] >> 24);
        s[4 * c + 1] ^= uint8_t(rk[c] >> 16);
        s[4 * c + 2] ^= uint8_t(rk[c] >> 8);
        s[4 * c + 3] ^= uint8_t(rk[c]);
    }
}

inline void
subBytes(uint8_t s[16])
{
    const Tables &t = tables();
    for (int i = 0; i < 16; i++)
        s[i] = t.sbox[s[i]];
}

inline void
invSubBytes(uint8_t s[16])
{
    const Tables &t = tables();
    for (int i = 0; i < 16; i++)
        s[i] = t.inv_sbox[s[i]];
}

inline void
shiftRows(uint8_t s[16])
{
    // State is column-major: s[4*c + r].
    uint8_t tmp[16];
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
    std::memcpy(s, tmp, 16);
}

inline void
invShiftRows(uint8_t s[16])
{
    uint8_t tmp[16];
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
    std::memcpy(s, tmp, 16);
}

inline void
mixColumns(uint8_t s[16])
{
    for (int c = 0; c < 4; c++) {
        uint8_t *p = s + 4 * c;
        uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        p[0] = uint8_t(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        p[1] = uint8_t(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        p[2] = uint8_t(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        p[3] = uint8_t(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

inline void
invMixColumns(uint8_t s[16])
{
    for (int c = 0; c < 4; c++) {
        uint8_t *p = s + 4 * c;
        uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        p[0] = uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                       gmul(a3, 9));
        p[1] = uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                       gmul(a3, 13));
        p[2] = uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                       gmul(a3, 11));
        p[3] = uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                       gmul(a3, 14));
    }
}

} // namespace

void
Aes128::encryptBlockRef(uint8_t block[16]) const
{
    addRoundKey(block, _roundKeys.data());
    for (int round = 1; round < 10; round++) {
        subBytes(block);
        shiftRows(block);
        mixColumns(block);
        addRoundKey(block, _roundKeys.data() + 4 * round);
    }
    subBytes(block);
    shiftRows(block);
    addRoundKey(block, _roundKeys.data() + 40);
}

void
Aes128::decryptBlockRef(uint8_t block[16]) const
{
    addRoundKey(block, _roundKeys.data() + 40);
    for (int round = 9; round >= 1; round--) {
        invShiftRows(block);
        invSubBytes(block);
        addRoundKey(block, _roundKeys.data() + 4 * round);
        invMixColumns(block);
    }
    invShiftRows(block);
    invSubBytes(block);
    addRoundKey(block, _roundKeys.data());
}

// --------------------------------------------------------------------
// T-table rounds: SubBytes+ShiftRows+MixColumns collapse to four table
// lookups and three XORs per output word.
// --------------------------------------------------------------------

void
Aes128::encryptBlockFast(uint8_t block[16]) const
{
    const Tables &t = tables();
    const uint32_t *rk = _roundKeys.data();
    uint32_t s0 = be32(block) ^ rk[0];
    uint32_t s1 = be32(block + 4) ^ rk[1];
    uint32_t s2 = be32(block + 8) ^ rk[2];
    uint32_t s3 = be32(block + 12) ^ rk[3];

    for (int round = 1; round < 10; round++) {
        rk += 4;
        uint32_t t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                      t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^
                      rk[0];
        uint32_t t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                      t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^
                      rk[1];
        uint32_t t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                      t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^
                      rk[2];
        uint32_t t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                      t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^
                      rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    rk += 4;
    uint32_t o0 = (uint32_t(t.sbox[s0 >> 24]) << 24) |
                  (uint32_t(t.sbox[(s1 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.sbox[(s2 >> 8) & 0xff]) << 8) |
                  uint32_t(t.sbox[s3 & 0xff]);
    uint32_t o1 = (uint32_t(t.sbox[s1 >> 24]) << 24) |
                  (uint32_t(t.sbox[(s2 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.sbox[(s3 >> 8) & 0xff]) << 8) |
                  uint32_t(t.sbox[s0 & 0xff]);
    uint32_t o2 = (uint32_t(t.sbox[s2 >> 24]) << 24) |
                  (uint32_t(t.sbox[(s3 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.sbox[(s0 >> 8) & 0xff]) << 8) |
                  uint32_t(t.sbox[s1 & 0xff]);
    uint32_t o3 = (uint32_t(t.sbox[s3 >> 24]) << 24) |
                  (uint32_t(t.sbox[(s0 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.sbox[(s1 >> 8) & 0xff]) << 8) |
                  uint32_t(t.sbox[s2 & 0xff]);
    putBe32(block, o0 ^ rk[0]);
    putBe32(block + 4, o1 ^ rk[1]);
    putBe32(block + 8, o2 ^ rk[2]);
    putBe32(block + 12, o3 ^ rk[3]);
}

void
Aes128::decryptBlockFast(uint8_t block[16]) const
{
    const Tables &t = tables();
    const uint32_t *dk = _decKeys.data();
    uint32_t s0 = be32(block) ^ dk[0];
    uint32_t s1 = be32(block + 4) ^ dk[1];
    uint32_t s2 = be32(block + 8) ^ dk[2];
    uint32_t s3 = be32(block + 12) ^ dk[3];

    for (int round = 1; round < 10; round++) {
        dk += 4;
        uint32_t t0 = t.td[0][s0 >> 24] ^ t.td[1][(s3 >> 16) & 0xff] ^
                      t.td[2][(s2 >> 8) & 0xff] ^ t.td[3][s1 & 0xff] ^
                      dk[0];
        uint32_t t1 = t.td[0][s1 >> 24] ^ t.td[1][(s0 >> 16) & 0xff] ^
                      t.td[2][(s3 >> 8) & 0xff] ^ t.td[3][s2 & 0xff] ^
                      dk[1];
        uint32_t t2 = t.td[0][s2 >> 24] ^ t.td[1][(s1 >> 16) & 0xff] ^
                      t.td[2][(s0 >> 8) & 0xff] ^ t.td[3][s3 & 0xff] ^
                      dk[2];
        uint32_t t3 = t.td[0][s3 >> 24] ^ t.td[1][(s2 >> 16) & 0xff] ^
                      t.td[2][(s1 >> 8) & 0xff] ^ t.td[3][s0 & 0xff] ^
                      dk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    dk += 4;
    uint32_t o0 = (uint32_t(t.inv_sbox[s0 >> 24]) << 24) |
                  (uint32_t(t.inv_sbox[(s3 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.inv_sbox[(s2 >> 8) & 0xff]) << 8) |
                  uint32_t(t.inv_sbox[s1 & 0xff]);
    uint32_t o1 = (uint32_t(t.inv_sbox[s1 >> 24]) << 24) |
                  (uint32_t(t.inv_sbox[(s0 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.inv_sbox[(s3 >> 8) & 0xff]) << 8) |
                  uint32_t(t.inv_sbox[s2 & 0xff]);
    uint32_t o2 = (uint32_t(t.inv_sbox[s2 >> 24]) << 24) |
                  (uint32_t(t.inv_sbox[(s1 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.inv_sbox[(s0 >> 8) & 0xff]) << 8) |
                  uint32_t(t.inv_sbox[s3 & 0xff]);
    uint32_t o3 = (uint32_t(t.inv_sbox[s3 >> 24]) << 24) |
                  (uint32_t(t.inv_sbox[(s2 >> 16) & 0xff]) << 16) |
                  (uint32_t(t.inv_sbox[(s1 >> 8) & 0xff]) << 8) |
                  uint32_t(t.inv_sbox[s0 & 0xff]);
    putBe32(block, o0 ^ dk[0]);
    putBe32(block + 4, o1 ^ dk[1]);
    putBe32(block + 8, o2 ^ dk[2]);
    putBe32(block + 12, o3 ^ dk[3]);
}

void
Aes128::encryptBlock(uint8_t block[16]) const
{
    if (_fast)
        encryptBlockFast(block);
    else
        encryptBlockRef(block);
}

void
Aes128::decryptBlock(uint8_t block[16]) const
{
    if (_fast)
        decryptBlockFast(block);
    else
        decryptBlockRef(block);
}

std::vector<uint8_t>
Aes128::cbcEncrypt(const std::vector<uint8_t> &plain,
                   const AesBlock &iv) const
{
    size_t pad = 16 - plain.size() % 16;
    std::vector<uint8_t> out(plain);
    out.insert(out.end(), pad, uint8_t(pad));

    uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    for (size_t off = 0; off < out.size(); off += 16) {
        for (int i = 0; i < 16; i++)
            out[off + i] ^= chain[i];
        encryptBlock(out.data() + off);
        std::memcpy(chain, out.data() + off, 16);
    }
    return out;
}

std::vector<uint8_t>
Aes128::cbcDecrypt(const std::vector<uint8_t> &cipher, const AesBlock &iv,
                   bool &ok) const
{
    ok = false;
    if (cipher.empty() || cipher.size() % 16 != 0)
        return {};

    std::vector<uint8_t> out(cipher);
    uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    for (size_t off = 0; off < out.size(); off += 16) {
        uint8_t saved[16];
        std::memcpy(saved, out.data() + off, 16);
        decryptBlock(out.data() + off);
        for (int i = 0; i < 16; i++)
            out[off + i] ^= chain[i];
        std::memcpy(chain, saved, 16);
    }

    uint8_t pad = out.back();
    if (pad == 0 || pad > 16 || pad > out.size())
        return {};
    for (size_t i = out.size() - pad; i < out.size(); i++) {
        if (out[i] != pad)
            return {};
    }
    out.resize(out.size() - pad);
    ok = true;
    return out;
}

void
Aes128::ctrCrypt(uint8_t *data, size_t len, const AesBlock &nonce) const
{
    uint8_t counter[16];
    std::memcpy(counter, nonce.data(), 16);
    uint8_t keystream[16];

    size_t off = 0;
    if (_fast) {
        // Whole-block path: XOR the keystream in two 64-bit lanes.
        for (; off + 16 <= len; off += 16) {
            std::memcpy(keystream, counter, 16);
            encryptBlock(keystream);
            uint64_t d0, d1, k0, k1;
            std::memcpy(&d0, data + off, 8);
            std::memcpy(&d1, data + off + 8, 8);
            std::memcpy(&k0, keystream, 8);
            std::memcpy(&k1, keystream + 8, 8);
            d0 ^= k0;
            d1 ^= k1;
            std::memcpy(data + off, &d0, 8);
            std::memcpy(data + off + 8, &d1, 8);
            for (int i = 15; i >= 8; i--) {
                if (++counter[i] != 0)
                    break;
            }
        }
    }
    for (; off < len; off += 16) {
        std::memcpy(keystream, counter, 16);
        encryptBlock(keystream);
        size_t n = std::min<size_t>(16, len - off);
        for (size_t i = 0; i < n; i++)
            data[off + i] ^= keystream[i];
        // Increment the big-endian counter in the low 8 bytes.
        for (int i = 15; i >= 8; i--) {
            if (++counter[i] != 0)
                break;
        }
    }
}

std::vector<uint8_t>
Aes128::ctrCrypt(const std::vector<uint8_t> &data,
                 const AesBlock &nonce) const
{
    std::vector<uint8_t> out(data);
    ctrCrypt(out.data(), out.size(), nonce);
    return out;
}

} // namespace vg::crypto
