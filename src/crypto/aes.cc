#include "crypto/aes.hh"

#include <cstring>

namespace vg::crypto
{

namespace
{

/** GF(2^8) multiply by x (xtime). */
inline uint8_t
xtime(uint8_t a)
{
    return uint8_t((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

/** Full GF(2^8) multiply. */
inline uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; i++) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

struct Tables
{
    uint8_t sbox[256];
    uint8_t inv_sbox[256];

    Tables()
    {
        // Build the S-box from the multiplicative inverse composed with
        // the affine transform, rather than transcribing the table.
        uint8_t inv[256];
        inv[0] = 0;
        for (int a = 1; a < 256; a++) {
            for (int b = 1; b < 256; b++) {
                if (gmul(uint8_t(a), uint8_t(b)) == 1) {
                    inv[a] = uint8_t(b);
                    break;
                }
            }
        }
        for (int i = 0; i < 256; i++) {
            uint8_t x = inv[i];
            uint8_t y = uint8_t(x ^ (uint8_t)(x << 1 | x >> 7) ^
                                (uint8_t)(x << 2 | x >> 6) ^
                                (uint8_t)(x << 3 | x >> 5) ^
                                (uint8_t)(x << 4 | x >> 4) ^ 0x63);
            sbox[i] = y;
            inv_sbox[y] = uint8_t(i);
        }
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

} // namespace

Aes128::Aes128(const AesKey &key)
{
    const Tables &t = tables();
    for (int i = 0; i < 4; i++) {
        _roundKeys[i] = (uint32_t(key[4 * i]) << 24) |
                        (uint32_t(key[4 * i + 1]) << 16) |
                        (uint32_t(key[4 * i + 2]) << 8) |
                        uint32_t(key[4 * i + 3]);
    }
    for (int i = 4; i < 44; i++) {
        uint32_t temp = _roundKeys[i - 1];
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            temp = (temp << 8) | (temp >> 24);
            temp = (uint32_t(t.sbox[(temp >> 24) & 0xff]) << 24) |
                   (uint32_t(t.sbox[(temp >> 16) & 0xff]) << 16) |
                   (uint32_t(t.sbox[(temp >> 8) & 0xff]) << 8) |
                   uint32_t(t.sbox[temp & 0xff]);
            temp ^= uint32_t(kRcon[i / 4]) << 24;
        }
        _roundKeys[i] = _roundKeys[i - 4] ^ temp;
    }
}

namespace
{

inline void
addRoundKey(uint8_t s[16], const uint32_t *rk)
{
    for (int c = 0; c < 4; c++) {
        s[4 * c] ^= uint8_t(rk[c] >> 24);
        s[4 * c + 1] ^= uint8_t(rk[c] >> 16);
        s[4 * c + 2] ^= uint8_t(rk[c] >> 8);
        s[4 * c + 3] ^= uint8_t(rk[c]);
    }
}

inline void
subBytes(uint8_t s[16])
{
    const Tables &t = tables();
    for (int i = 0; i < 16; i++)
        s[i] = t.sbox[s[i]];
}

inline void
invSubBytes(uint8_t s[16])
{
    const Tables &t = tables();
    for (int i = 0; i < 16; i++)
        s[i] = t.inv_sbox[s[i]];
}

inline void
shiftRows(uint8_t s[16])
{
    // State is column-major: s[4*c + r].
    uint8_t tmp[16];
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
    std::memcpy(s, tmp, 16);
}

inline void
invShiftRows(uint8_t s[16])
{
    uint8_t tmp[16];
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
    std::memcpy(s, tmp, 16);
}

inline void
mixColumns(uint8_t s[16])
{
    for (int c = 0; c < 4; c++) {
        uint8_t *p = s + 4 * c;
        uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        p[0] = uint8_t(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        p[1] = uint8_t(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        p[2] = uint8_t(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        p[3] = uint8_t(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

inline void
invMixColumns(uint8_t s[16])
{
    for (int c = 0; c < 4; c++) {
        uint8_t *p = s + 4 * c;
        uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        p[0] = uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                       gmul(a3, 9));
        p[1] = uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                       gmul(a3, 13));
        p[2] = uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                       gmul(a3, 11));
        p[3] = uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                       gmul(a3, 14));
    }
}

} // namespace

void
Aes128::encryptBlock(uint8_t block[16]) const
{
    addRoundKey(block, _roundKeys.data());
    for (int round = 1; round < 10; round++) {
        subBytes(block);
        shiftRows(block);
        mixColumns(block);
        addRoundKey(block, _roundKeys.data() + 4 * round);
    }
    subBytes(block);
    shiftRows(block);
    addRoundKey(block, _roundKeys.data() + 40);
}

void
Aes128::decryptBlock(uint8_t block[16]) const
{
    addRoundKey(block, _roundKeys.data() + 40);
    for (int round = 9; round >= 1; round--) {
        invShiftRows(block);
        invSubBytes(block);
        addRoundKey(block, _roundKeys.data() + 4 * round);
        invMixColumns(block);
    }
    invShiftRows(block);
    invSubBytes(block);
    addRoundKey(block, _roundKeys.data());
}

std::vector<uint8_t>
Aes128::cbcEncrypt(const std::vector<uint8_t> &plain,
                   const AesBlock &iv) const
{
    size_t pad = 16 - plain.size() % 16;
    std::vector<uint8_t> out(plain);
    out.insert(out.end(), pad, uint8_t(pad));

    uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    for (size_t off = 0; off < out.size(); off += 16) {
        for (int i = 0; i < 16; i++)
            out[off + i] ^= chain[i];
        encryptBlock(out.data() + off);
        std::memcpy(chain, out.data() + off, 16);
    }
    return out;
}

std::vector<uint8_t>
Aes128::cbcDecrypt(const std::vector<uint8_t> &cipher, const AesBlock &iv,
                   bool &ok) const
{
    ok = false;
    if (cipher.empty() || cipher.size() % 16 != 0)
        return {};

    std::vector<uint8_t> out(cipher);
    uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    for (size_t off = 0; off < out.size(); off += 16) {
        uint8_t saved[16];
        std::memcpy(saved, out.data() + off, 16);
        decryptBlock(out.data() + off);
        for (int i = 0; i < 16; i++)
            out[off + i] ^= chain[i];
        std::memcpy(chain, saved, 16);
    }

    uint8_t pad = out.back();
    if (pad == 0 || pad > 16 || pad > out.size())
        return {};
    for (size_t i = out.size() - pad; i < out.size(); i++) {
        if (out[i] != pad)
            return {};
    }
    out.resize(out.size() - pad);
    ok = true;
    return out;
}

void
Aes128::ctrCrypt(uint8_t *data, size_t len, const AesBlock &nonce) const
{
    uint8_t counter[16];
    std::memcpy(counter, nonce.data(), 16);
    uint8_t keystream[16];
    for (size_t off = 0; off < len; off += 16) {
        std::memcpy(keystream, counter, 16);
        encryptBlock(keystream);
        size_t n = std::min<size_t>(16, len - off);
        for (size_t i = 0; i < n; i++)
            data[off + i] ^= keystream[i];
        // Increment the big-endian counter in the low 8 bytes.
        for (int i = 15; i >= 8; i--) {
            if (++counter[i] != 0)
                break;
        }
    }
}

std::vector<uint8_t>
Aes128::ctrCrypt(const std::vector<uint8_t> &data,
                 const AesBlock &nonce) const
{
    std::vector<uint8_t> out(data);
    ctrCrypt(out.data(), out.size(), nonce);
    return out;
}

} // namespace vg::crypto
