/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for HMAC integrity tags on swapped ghost pages and translation
 * signatures, and for application file checksums (S 3.3).
 *
 * Two compress/finalize strategies produce bit-identical digests: the
 * default fast path pads in one stack buffer and runs an unrolled
 * compression loop; the reference path keeps the textbook rotating
 * round loop and the byte-at-a-time `update(&pad, 1)` finalize. The
 * reference path exists for differential testing
 * (VgConfig::cryptoFastPath) and as executable documentation.
 */

#ifndef VG_CRYPTO_SHA256_HH
#define VG_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vg::crypto
{

/** A 32-byte SHA-256 digest. */
using Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    /**
     * @param fast select the one-shot-padding fast path (default) or
     *             the byte-wise reference finalize; digests are
     *             bit-identical either way.
     */
    explicit Sha256(bool fast = true) : _fast(fast) { reset(); }

    /** Reset to the initial state (keeps the path selection). */
    void reset();

    /** Absorb @p len bytes at @p data. */
    void update(const void *data, size_t len);

    /** Finalize and return the digest; the hasher is then reset. */
    Digest final();

    /** One-shot convenience hash. */
    static Digest hash(const void *data, size_t len, bool fast = true);

    /** One-shot hash of a byte vector. */
    static Digest
    hash(const std::vector<uint8_t> &data, bool fast = true)
    {
        return hash(data.data(), data.size(), fast);
    }

  private:
    void processBlock(const uint8_t *block);
    void compressRef(const uint8_t *block);
    void compressFast(const uint8_t *block);

    std::array<uint32_t, 8> _state;
    std::array<uint8_t, 64> _buffer;
    uint64_t _totalLen;
    size_t _bufferLen;
    bool _fast;
};

/** Render a digest as lowercase hex. */
std::string toHex(const Digest &digest);

} // namespace vg::crypto

#endif // VG_CRYPTO_SHA256_HH
