/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used for HMAC integrity tags on swapped ghost pages and translation
 * signatures, and for application file checksums (S 3.3).
 */

#ifndef VG_CRYPTO_SHA256_HH
#define VG_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vg::crypto
{

/** A 32-byte SHA-256 digest. */
using Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes at @p data. */
    void update(const void *data, size_t len);

    /** Finalize and return the digest; the hasher is then reset. */
    Digest final();

    /** One-shot convenience hash. */
    static Digest hash(const void *data, size_t len);

    /** One-shot hash of a byte vector. */
    static Digest
    hash(const std::vector<uint8_t> &data)
    {
        return hash(data.data(), data.size());
    }

  private:
    void processBlock(const uint8_t *block);

    std::array<uint32_t, 8> _state;
    std::array<uint8_t, 64> _buffer;
    uint64_t _totalLen;
    size_t _bufferLen;
};

/** Render a digest as lowercase hex. */
std::string toHex(const Digest &digest);

} // namespace vg::crypto

#endif // VG_CRYPTO_SHA256_HH
