/**
 * @file
 * Arbitrary-precision unsigned integers for RSA.
 *
 * Little-endian 32-bit limbs. Implements exactly the operations the RSA
 * layer needs: comparison, add/sub, multiply, divmod, shifts, modular
 * exponentiation, extended GCD / modular inverse, and Miller-Rabin
 * primality testing.
 */

#ifndef VG_CRYPTO_BIGNUM_HH
#define VG_CRYPTO_BIGNUM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vg::crypto
{

class CtrDrbg;

/** Unsigned big integer. */
class BigNum
{
  public:
    BigNum() = default;

    /** Construct from a 64-bit value. */
    explicit BigNum(uint64_t v);

    /** Construct from big-endian bytes. */
    static BigNum fromBytes(const std::vector<uint8_t> &bytes);

    /** Serialize to big-endian bytes (minimal length, "0" => {0}). */
    std::vector<uint8_t> toBytes() const;

    /** Serialize to big-endian bytes left-padded to @p len. */
    std::vector<uint8_t> toBytesPadded(size_t len) const;

    /** Parse from lowercase hex. */
    static BigNum fromHex(const std::string &hex);

    /** Render as lowercase hex (no leading zeros, "0" for zero). */
    std::string toHex() const;

    bool isZero() const { return _limbs.empty(); }
    bool isOdd() const { return !_limbs.empty() && (_limbs[0] & 1); }

    /** Number of significant bits. */
    size_t bitLength() const;

    /** Value of bit @p i (0 = least significant). */
    bool bit(size_t i) const;

    /** Set bit @p i to 1. */
    void setBit(size_t i);

    int compare(const BigNum &other) const;

    bool operator==(const BigNum &o) const { return compare(o) == 0; }
    bool operator!=(const BigNum &o) const { return compare(o) != 0; }
    bool operator<(const BigNum &o) const { return compare(o) < 0; }
    bool operator<=(const BigNum &o) const { return compare(o) <= 0; }
    bool operator>(const BigNum &o) const { return compare(o) > 0; }
    bool operator>=(const BigNum &o) const { return compare(o) >= 0; }

    BigNum operator+(const BigNum &o) const;
    /** Subtraction; requires *this >= o. */
    BigNum operator-(const BigNum &o) const;
    BigNum operator*(const BigNum &o) const;
    BigNum operator<<(size_t bits) const;
    BigNum operator>>(size_t bits) const;

    /** Quotient and remainder of *this / divisor (divisor != 0). */
    void divmod(const BigNum &divisor, BigNum &quotient,
                BigNum &remainder) const;

    BigNum operator/(const BigNum &o) const;
    BigNum operator%(const BigNum &o) const;

    /**
     * Modular exponentiation: this^exp mod mod.
     *
     * The default fast path uses Montgomery multiplication with a
     * 4-bit fixed-window ladder (odd moduli > 1; even moduli fall
     * back to the reference path). Results are identical to the
     * reference square-and-multiply either way.
     */
    BigNum modExp(const BigNum &exp, const BigNum &mod,
                  bool fast = true) const;

    /**
     * Modular inverse of *this mod @p mod.
     * @param ok set false if no inverse exists.
     */
    BigNum modInverse(const BigNum &mod, bool &ok) const;

    /** Greatest common divisor. */
    static BigNum gcd(BigNum a, BigNum b);

    /** Miller-Rabin probabilistic primality test. */
    bool isProbablePrime(CtrDrbg &rng, int rounds = 24) const;

    /** Uniform random value in [0, bound). */
    static BigNum random(CtrDrbg &rng, const BigNum &bound);

    /** Random value with exactly @p bits bits (top bit set). */
    static BigNum randomBits(CtrDrbg &rng, size_t bits);

  private:
    void trim();

    /** Montgomery-domain modExp; requires odd modulus > 1. */
    BigNum modExpMont(const BigNum &exp, const BigNum &mod) const;

    /** Little-endian limbs; empty means zero. */
    std::vector<uint32_t> _limbs;
};

} // namespace vg::crypto

#endif // VG_CRYPTO_BIGNUM_HH
