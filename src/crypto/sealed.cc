#include "crypto/sealed.hh"

#include <cstring>

#include "crypto/drbg.hh"
#include "crypto/hmac.hh"

namespace vg::crypto
{

namespace
{

/** Derive independent cipher and MAC keys from the master key. */
void
deriveKeys(const AesKey &master, AesKey &enc_key,
           std::vector<uint8_t> &mac_key)
{
    Sha256 h1;
    h1.update("vg-seal-enc", 11);
    h1.update(master.data(), master.size());
    Digest d1 = h1.final();
    std::memcpy(enc_key.data(), d1.data(), enc_key.size());

    Sha256 h2;
    h2.update("vg-seal-mac", 11);
    h2.update(master.data(), master.size());
    Digest d2 = h2.final();
    mac_key.assign(d2.begin(), d2.end());
}

Digest
computeMac(const std::vector<uint8_t> &mac_key, const SealedBlob &blob,
           const std::vector<uint8_t> &aad)
{
    std::vector<uint8_t> buf;
    buf.reserve(aad.size() + blob.nonce.size() + blob.ciphertext.size());
    buf.insert(buf.end(), aad.begin(), aad.end());
    buf.insert(buf.end(), blob.nonce.begin(), blob.nonce.end());
    buf.insert(buf.end(), blob.ciphertext.begin(), blob.ciphertext.end());
    return hmacSha256(mac_key, buf);
}

} // namespace

std::vector<uint8_t>
SealedBlob::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(nonce.size() + mac.size() + ciphertext.size());
    out.insert(out.end(), nonce.begin(), nonce.end());
    out.insert(out.end(), mac.begin(), mac.end());
    out.insert(out.end(), ciphertext.begin(), ciphertext.end());
    return out;
}

SealedBlob
SealedBlob::deserialize(const std::vector<uint8_t> &bytes, bool &ok)
{
    SealedBlob blob;
    ok = false;
    if (bytes.size() < blob.nonce.size() + blob.mac.size())
        return blob;
    size_t off = 0;
    std::memcpy(blob.nonce.data(), bytes.data(), blob.nonce.size());
    off += blob.nonce.size();
    std::memcpy(blob.mac.data(), bytes.data() + off, blob.mac.size());
    off += blob.mac.size();
    blob.ciphertext.assign(bytes.begin() + off, bytes.end());
    ok = true;
    return blob;
}

SealedBlob
seal(const AesKey &key, CtrDrbg &rng, const std::vector<uint8_t> &plain,
     const std::vector<uint8_t> &aad)
{
    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(key, enc_key, mac_key);

    SealedBlob blob;
    rng.generate(blob.nonce.data(), blob.nonce.size());
    blob.ciphertext = Aes128(enc_key).ctrCrypt(plain, blob.nonce);
    blob.mac = computeMac(mac_key, blob, aad);
    return blob;
}

std::vector<uint8_t>
unseal(const AesKey &key, const SealedBlob &blob, bool &ok,
       const std::vector<uint8_t> &aad)
{
    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(key, enc_key, mac_key);

    Digest expect = computeMac(mac_key, blob, aad);
    if (!digestEqual(expect, blob.mac)) {
        ok = false;
        return {};
    }
    ok = true;
    return Aes128(enc_key).ctrCrypt(blob.ciphertext, blob.nonce);
}

} // namespace vg::crypto
