#include "crypto/sealed.hh"

#include <cstring>
#include <map>

#include "crypto/drbg.hh"
#include "crypto/hmac.hh"

namespace vg::crypto
{

namespace
{

/** Derive independent cipher and MAC keys from the master key. */
void
deriveKeys(const AesKey &master, AesKey &enc_key,
           std::vector<uint8_t> &mac_key, bool fast = true)
{
    Sha256 h1(fast);
    h1.update("vg-seal-enc", 11);
    h1.update(master.data(), master.size());
    Digest d1 = h1.final();
    std::memcpy(enc_key.data(), d1.data(), enc_key.size());

    Sha256 h2(fast);
    h2.update("vg-seal-mac", 11);
    h2.update(master.data(), master.size());
    Digest d2 = h2.final();
    mac_key.assign(d2.begin(), d2.end());
}

/** Ready-to-use subkey schedules derived from one master key. */
struct SealKeys
{
    Aes128 aes;
    HmacSha256 mac;
};

/**
 * Derived-key cache: the two KDF passes, the AES key schedule, and the
 * HMAC pad states are a pure function of the master key, so amortize
 * them across calls. Capped so pathological key churn cannot grow it
 * without bound.
 */
const SealKeys &
cachedKeys(const AesKey &master)
{
    static std::map<AesKey, SealKeys> cache;
    auto it = cache.find(master);
    if (it != cache.end())
        return it->second;
    if (cache.size() >= 64)
        cache.clear();

    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(master, enc_key, mac_key);
    return cache
        .emplace(master, SealKeys{Aes128(enc_key), HmacSha256(mac_key)})
        .first->second;
}

/** Streaming MAC over aad || nonce || ciphertext (fast path). */
Digest
computeMacFast(const HmacSha256 &mac, const SealedBlob &blob,
               const std::vector<uint8_t> &aad)
{
    Sha256 inner = mac.begin();
    inner.update(aad.data(), aad.size());
    inner.update(blob.nonce.data(), blob.nonce.size());
    inner.update(blob.ciphertext.data(), blob.ciphertext.size());
    return mac.finish(inner);
}

/** Reference MAC: concatenate, then one-shot HMAC. */
Digest
computeMac(const std::vector<uint8_t> &mac_key, const SealedBlob &blob,
           const std::vector<uint8_t> &aad)
{
    std::vector<uint8_t> buf;
    buf.reserve(aad.size() + blob.nonce.size() + blob.ciphertext.size());
    buf.insert(buf.end(), aad.begin(), aad.end());
    buf.insert(buf.end(), blob.nonce.begin(), blob.nonce.end());
    buf.insert(buf.end(), blob.ciphertext.begin(), blob.ciphertext.end());
    return hmacSha256(mac_key, buf, false);
}

} // namespace

std::vector<uint8_t>
SealedBlob::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(nonce.size() + mac.size() + ciphertext.size());
    out.insert(out.end(), nonce.begin(), nonce.end());
    out.insert(out.end(), mac.begin(), mac.end());
    out.insert(out.end(), ciphertext.begin(), ciphertext.end());
    return out;
}

SealedBlob
SealedBlob::deserialize(const std::vector<uint8_t> &bytes, bool &ok)
{
    SealedBlob blob;
    ok = false;
    if (bytes.size() < blob.nonce.size() + blob.mac.size())
        return blob;
    size_t off = 0;
    std::memcpy(blob.nonce.data(), bytes.data(), blob.nonce.size());
    off += blob.nonce.size();
    std::memcpy(blob.mac.data(), bytes.data() + off, blob.mac.size());
    off += blob.mac.size();
    blob.ciphertext.assign(bytes.begin() + off, bytes.end());
    ok = true;
    return blob;
}

SealedBlob
seal(const AesKey &key, CtrDrbg &rng, const std::vector<uint8_t> &plain,
     const std::vector<uint8_t> &aad, bool fast)
{
    SealedBlob blob;
    rng.generate(blob.nonce.data(), blob.nonce.size());

    if (fast) {
        const SealKeys &keys = cachedKeys(key);
        blob.ciphertext = keys.aes.ctrCrypt(plain, blob.nonce);
        blob.mac = computeMacFast(keys.mac, blob, aad);
        return blob;
    }

    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(key, enc_key, mac_key, false);
    blob.ciphertext = Aes128(enc_key, false).ctrCrypt(plain, blob.nonce);
    blob.mac = computeMac(mac_key, blob, aad);
    return blob;
}

std::vector<SealedBlob>
sealBatch(const AesKey &key, CtrDrbg &rng,
          const std::vector<SealInput> &batch, bool fast)
{
    std::vector<SealedBlob> out;
    out.reserve(batch.size());

    if (fast) {
        const SealKeys &keys = cachedKeys(key);
        for (const SealInput &in : batch) {
            SealedBlob blob;
            rng.generate(blob.nonce.data(), blob.nonce.size());
            blob.ciphertext = keys.aes.ctrCrypt(in.plain, blob.nonce);
            blob.mac = computeMacFast(keys.mac, blob, in.aad);
            out.push_back(std::move(blob));
        }
        return out;
    }

    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(key, enc_key, mac_key, false);
    Aes128 aes(enc_key, false);
    for (const SealInput &in : batch) {
        SealedBlob blob;
        rng.generate(blob.nonce.data(), blob.nonce.size());
        blob.ciphertext = aes.ctrCrypt(in.plain, blob.nonce);
        blob.mac = computeMac(mac_key, blob, in.aad);
        out.push_back(std::move(blob));
    }
    return out;
}

std::vector<uint8_t>
unseal(const AesKey &key, const SealedBlob &blob, bool &ok,
       const std::vector<uint8_t> &aad, bool fast)
{
    if (fast) {
        const SealKeys &keys = cachedKeys(key);
        Digest expect = computeMacFast(keys.mac, blob, aad);
        if (!digestEqual(expect, blob.mac)) {
            ok = false;
            return {};
        }
        ok = true;
        return keys.aes.ctrCrypt(blob.ciphertext, blob.nonce);
    }

    AesKey enc_key;
    std::vector<uint8_t> mac_key;
    deriveKeys(key, enc_key, mac_key, false);
    Digest expect = computeMac(mac_key, blob, aad);
    if (!digestEqual(expect, blob.mac)) {
        ok = false;
        return {};
    }
    ok = true;
    return Aes128(enc_key, false).ctrCrypt(blob.ciphertext, blob.nonce);
}

} // namespace vg::crypto
