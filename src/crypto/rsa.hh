/**
 * @file
 * RSA public-key encryption and signatures.
 *
 * Virtual Ghost maintains a public/private key pair per installed
 * system (S 3.3): the private key is sealed by the TPM storage key, the
 * public key signs application binaries and encrypts the per-application
 * key section. We implement key generation (Miller-Rabin), PKCS#1-v1.5
 * style encryption padding, and hash-then-sign signatures.
 */

#ifndef VG_CRYPTO_RSA_HH
#define VG_CRYPTO_RSA_HH

#include <cstdint>
#include <vector>

#include "crypto/bignum.hh"
#include "crypto/sha256.hh"

namespace vg::crypto
{

class CtrDrbg;

/** An RSA public key (n, e). */
struct RsaPublicKey
{
    BigNum n;
    BigNum e;

    /** Modulus size in bytes. */
    size_t modulusBytes() const { return (n.bitLength() + 7) / 8; }

    std::vector<uint8_t> serialize() const;
    static RsaPublicKey deserialize(const std::vector<uint8_t> &bytes,
                                    bool &ok);
};

/** An RSA private key (n, e, d; p and q retained for tests). */
struct RsaPrivateKey
{
    BigNum n;
    BigNum e;
    BigNum d;
    BigNum p;
    BigNum q;

    RsaPublicKey publicKey() const { return {n, e}; }

    std::vector<uint8_t> serialize() const;
    static RsaPrivateKey deserialize(const std::vector<uint8_t> &bytes,
                                     bool &ok);
};

/** Generate an RSA key pair with an @p bits-bit modulus. */
RsaPrivateKey rsaGenerate(CtrDrbg &rng, size_t bits);

/**
 * Encrypt a short message (<= modulusBytes - 11) under @p key.
 * Uses PKCS#1 v1.5-style type-2 random padding.
 * @param fast forwarded to BigNum::modExp (outputs are identical).
 */
std::vector<uint8_t> rsaEncrypt(const RsaPublicKey &key, CtrDrbg &rng,
                                const std::vector<uint8_t> &message,
                                bool fast = true);

/** Decrypt; @p ok is false on padding or length failure. */
std::vector<uint8_t> rsaDecrypt(const RsaPrivateKey &key,
                                const std::vector<uint8_t> &cipher,
                                bool &ok, bool fast = true);

/** Sign SHA-256(@p message) with the private key. */
std::vector<uint8_t> rsaSign(const RsaPrivateKey &key,
                             const std::vector<uint8_t> &message,
                             bool fast = true);

/** Verify a signature produced by rsaSign(). */
bool rsaVerify(const RsaPublicKey &key, const std::vector<uint8_t> &message,
               const std::vector<uint8_t> &signature, bool fast = true);

} // namespace vg::crypto

#endif // VG_CRYPTO_RSA_HH
