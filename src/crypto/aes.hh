/**
 * @file
 * AES-128 implemented from scratch (FIPS 197), with CBC and CTR modes.
 *
 * This is the symmetric cipher behind application keys (S 3.3), ghost
 * page swapping (S 3.3), and the ssh session transport (S 6). The
 * paper's prototype hard-codes a 128-bit AES application key; we keep
 * the same key size.
 */

#ifndef VG_CRYPTO_AES_HH
#define VG_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vg::crypto
{

/** A 128-bit symmetric key. */
using AesKey = std::array<uint8_t, 16>;

/** A 128-bit block / IV / counter. */
using AesBlock = std::array<uint8_t, 16>;

/** AES-128 block cipher with expanded round keys. */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(uint8_t block[16]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(uint8_t block[16]) const;

    /**
     * CBC-encrypt with PKCS#7 padding.
     * @return ciphertext, always a non-empty multiple of 16 bytes.
     */
    std::vector<uint8_t> cbcEncrypt(const std::vector<uint8_t> &plain,
                                    const AesBlock &iv) const;

    /**
     * CBC-decrypt and strip PKCS#7 padding.
     * @param ok set to false on malformed input or bad padding.
     */
    std::vector<uint8_t> cbcDecrypt(const std::vector<uint8_t> &cipher,
                                    const AesBlock &iv, bool &ok) const;

    /** CTR-mode keystream XOR (encryption == decryption). */
    std::vector<uint8_t> ctrCrypt(const std::vector<uint8_t> &data,
                                  const AesBlock &nonce) const;

    /** CTR-mode in place over a raw buffer. */
    void ctrCrypt(uint8_t *data, size_t len, const AesBlock &nonce) const;

  private:
    std::array<uint32_t, 44> _roundKeys;
};

} // namespace vg::crypto

#endif // VG_CRYPTO_AES_HH
