/**
 * @file
 * AES-128 implemented from scratch (FIPS 197), with CBC and CTR modes.
 *
 * This is the symmetric cipher behind application keys (S 3.3), ghost
 * page swapping (S 3.3), and the ssh session transport (S 6). The
 * paper's prototype hard-codes a 128-bit AES application key; we keep
 * the same key size.
 *
 * Two implementations live side by side and produce bit-identical
 * output: the default fast path uses precomputed round T-tables
 * (encrypt) and the equivalent inverse cipher (decrypt) with a
 * block-at-a-time CTR mode; the reference path is the textbook
 * byte-oriented SubBytes/ShiftRows/MixColumns round. The reference
 * path exists for differential testing (VgConfig::cryptoFastPath) and
 * as executable documentation.
 */

#ifndef VG_CRYPTO_AES_HH
#define VG_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vg::crypto
{

/** A 128-bit symmetric key. */
using AesKey = std::array<uint8_t, 16>;

/** A 128-bit block / IV / counter. */
using AesBlock = std::array<uint8_t, 16>;

namespace detail
{

/**
 * Build the AES S-box and its inverse from the xtime/exponentiation
 * construction: 0x03 generates GF(2^8)*, so log/antilog tables give
 * every multiplicative inverse in one pass (no O(256^2) search).
 * Exposed so table generation is testable on its own.
 */
void buildAesSboxes(uint8_t sbox[256], uint8_t inv_sbox[256]);

} // namespace detail

/** AES-128 block cipher with expanded round keys. */
class Aes128
{
  public:
    /**
     * @param fast select the T-table fast path (default) or the
     *             byte-oriented reference rounds; outputs are
     *             bit-identical either way.
     */
    explicit Aes128(const AesKey &key, bool fast = true);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(uint8_t block[16]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(uint8_t block[16]) const;

    /**
     * CBC-encrypt with PKCS#7 padding.
     * @return ciphertext, always a non-empty multiple of 16 bytes.
     */
    std::vector<uint8_t> cbcEncrypt(const std::vector<uint8_t> &plain,
                                    const AesBlock &iv) const;

    /**
     * CBC-decrypt and strip PKCS#7 padding.
     * @param ok set to false on malformed input or bad padding.
     */
    std::vector<uint8_t> cbcDecrypt(const std::vector<uint8_t> &cipher,
                                    const AesBlock &iv, bool &ok) const;

    /** CTR-mode keystream XOR (encryption == decryption). */
    std::vector<uint8_t> ctrCrypt(const std::vector<uint8_t> &data,
                                  const AesBlock &nonce) const;

    /** CTR-mode in place over a raw buffer. */
    void ctrCrypt(uint8_t *data, size_t len, const AesBlock &nonce) const;

  private:
    void encryptBlockFast(uint8_t block[16]) const;
    void encryptBlockRef(uint8_t block[16]) const;
    void decryptBlockFast(uint8_t block[16]) const;
    void decryptBlockRef(uint8_t block[16]) const;

    std::array<uint32_t, 44> _roundKeys;
    /** Equivalent-inverse-cipher round keys (fast decrypt only). */
    std::array<uint32_t, 44> _decKeys;
    bool _fast;
};

} // namespace vg::crypto

#endif // VG_CRYPTO_AES_HH
