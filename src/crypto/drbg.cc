#include "crypto/drbg.hh"

#include <cstring>

#include "crypto/sha256.hh"
#include "sim/log.hh"

namespace vg::crypto
{

CtrDrbg::CtrDrbg(const AesKey &seed_key, const AesBlock &nonce)
    : _key(seed_key), _counter(nonce), _aes(seed_key)
{}

CtrDrbg::CtrDrbg(const std::vector<uint8_t> &seed_material)
    : _aes(AesKey{})
{
    Digest d = Sha256::hash(seed_material.data(), seed_material.size());
    std::memcpy(_key.data(), d.data(), 16);
    std::memcpy(_counter.data(), d.data() + 16, 16);
    _aes = Aes128(_key);
}

void
CtrDrbg::step(uint8_t out[16])
{
    for (int i = 15; i >= 0; i--) {
        if (++_counter[i] != 0)
            break;
    }
    std::memcpy(out, _counter.data(), 16);
    _aes.encryptBlock(out);
}

void
CtrDrbg::generate(void *out, size_t len)
{
    uint8_t *p = static_cast<uint8_t *>(out);
    uint8_t block[16];
    while (len > 0) {
        step(block);
        size_t n = std::min<size_t>(16, len);
        std::memcpy(p, block, n);
        p += n;
        len -= n;
    }
}

std::vector<uint8_t>
CtrDrbg::generate(size_t len)
{
    std::vector<uint8_t> out(len);
    generate(out.data(), out.size());
    return out;
}

uint64_t
CtrDrbg::next64()
{
    uint64_t v;
    generate(&v, sizeof(v));
    return v;
}

uint64_t
CtrDrbg::nextBounded(uint64_t bound)
{
    if (bound == 0)
        sim::panic("CtrDrbg::nextBounded: zero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = ~uint64_t(0) - (~uint64_t(0) % bound);
    uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return v % bound;
}

void
CtrDrbg::reseed(const std::vector<uint8_t> &material)
{
    Sha256 h;
    h.update(_key.data(), _key.size());
    h.update(_counter.data(), _counter.size());
    h.update(material.data(), material.size());
    Digest d = h.final();
    std::memcpy(_key.data(), d.data(), 16);
    std::memcpy(_counter.data(), d.data() + 16, 16);
    _aes = Aes128(_key);
}

} // namespace vg::crypto
