#include "crypto/sha256.hh"

#include <cstring>

namespace vg::crypto
{

namespace
{

constexpr std::array<uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

/** One SHA-256 round with the a..h roles passed explicitly, so the
 *  unrolled loop rotates register roles instead of shuffling values. */
inline void
round(uint32_t a, uint32_t b, uint32_t c, uint32_t &d, uint32_t e,
      uint32_t f, uint32_t g, uint32_t &h, uint32_t k, uint32_t w)
{
    uint32_t t1 = h + (rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)) +
                  ((e & f) ^ (~e & g)) + k + w;
    uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +
                  ((a & b) ^ (a & c) ^ (b & c));
    d += t1;
    h = t1 + t2;
}

} // namespace

void
Sha256::reset()
{
    _state = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    _totalLen = 0;
    _bufferLen = 0;
}

void
Sha256::processBlock(const uint8_t *block)
{
    if (_fast)
        compressFast(block);
    else
        compressRef(block);
}

void
Sha256::compressRef(const uint8_t *block)
{
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
        w[i] = (uint32_t(block[i * 4]) << 24) |
               (uint32_t(block[i * 4 + 1]) << 16) |
               (uint32_t(block[i * 4 + 2]) << 8) |
               uint32_t(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; i++) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = _state[0], b = _state[1], c = _state[2], d = _state[3];
    uint32_t e = _state[4], f = _state[5], g = _state[6], h = _state[7];

    for (int i = 0; i < 64; i++) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t temp1 = h + s1 + ch + kRound[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }

    _state[0] += a;
    _state[1] += b;
    _state[2] += c;
    _state[3] += d;
    _state[4] += e;
    _state[5] += f;
    _state[6] += g;
    _state[7] += h;
}

void
Sha256::compressFast(const uint8_t *block)
{
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
        w[i] = (uint32_t(block[i * 4]) << 24) |
               (uint32_t(block[i * 4 + 1]) << 16) |
               (uint32_t(block[i * 4 + 2]) << 8) |
               uint32_t(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; i++) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = _state[0], b = _state[1], c = _state[2], d = _state[3];
    uint32_t e = _state[4], f = _state[5], g = _state[6], h = _state[7];

    // Eight rounds per iteration with rotated register roles — no
    // value shuffling between rounds.
    for (int i = 0; i < 64; i += 8) {
        round(a, b, c, d, e, f, g, h, kRound[i + 0], w[i + 0]);
        round(h, a, b, c, d, e, f, g, kRound[i + 1], w[i + 1]);
        round(g, h, a, b, c, d, e, f, kRound[i + 2], w[i + 2]);
        round(f, g, h, a, b, c, d, e, kRound[i + 3], w[i + 3]);
        round(e, f, g, h, a, b, c, d, kRound[i + 4], w[i + 4]);
        round(d, e, f, g, h, a, b, c, kRound[i + 5], w[i + 5]);
        round(c, d, e, f, g, h, a, b, kRound[i + 6], w[i + 6]);
        round(b, c, d, e, f, g, h, a, kRound[i + 7], w[i + 7]);
    }

    _state[0] += a;
    _state[1] += b;
    _state[2] += c;
    _state[3] += d;
    _state[4] += e;
    _state[5] += f;
    _state[6] += g;
    _state[7] += h;
}

void
Sha256::update(const void *data, size_t len)
{
    if (len == 0)
        return;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    _totalLen += len;

    if (_bufferLen > 0) {
        size_t take = std::min(len, _buffer.size() - _bufferLen);
        std::memcpy(_buffer.data() + _bufferLen, p, take);
        _bufferLen += take;
        p += take;
        len -= take;
        if (_bufferLen == _buffer.size()) {
            processBlock(_buffer.data());
            _bufferLen = 0;
        }
    }
    while (len >= 64) {
        processBlock(p);
        p += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(_buffer.data(), p, len);
        _bufferLen = len;
    }
}

Digest
Sha256::final()
{
    uint64_t bit_len = _totalLen * 8;

    if (_fast) {
        // One-shot padding: the tail always fits in one or two blocks.
        uint8_t pad[128];
        std::memcpy(pad, _buffer.data(), _bufferLen);
        size_t n = _bufferLen;
        pad[n++] = 0x80;
        size_t total = (n + 8 <= 64) ? 64 : 128;
        std::memset(pad + n, 0, total - 8 - n);
        for (int i = 0; i < 8; i++)
            pad[total - 8 + i] = uint8_t(bit_len >> (56 - 8 * i));
        processBlock(pad);
        if (total == 128)
            processBlock(pad + 64);
    } else {
        uint8_t pad = 0x80;
        update(&pad, 1);
        uint8_t zero = 0;
        while (_bufferLen != 56)
            update(&zero, 1);
        uint8_t len_be[8];
        for (int i = 0; i < 8; i++)
            len_be[i] = uint8_t(bit_len >> (56 - 8 * i));
        update(len_be, 8);
    }

    Digest out;
    for (int i = 0; i < 8; i++) {
        out[i * 4] = uint8_t(_state[i] >> 24);
        out[i * 4 + 1] = uint8_t(_state[i] >> 16);
        out[i * 4 + 2] = uint8_t(_state[i] >> 8);
        out[i * 4 + 3] = uint8_t(_state[i]);
    }
    reset();
    return out;
}

Digest
Sha256::hash(const void *data, size_t len, bool fast)
{
    Sha256 h(fast);
    h.update(data, len);
    return h.final();
}

std::string
toHex(const Digest &digest)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (uint8_t b : digest) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

} // namespace vg::crypto
