#include "crypto/bignum.hh"

#include <algorithm>

#include "crypto/drbg.hh"
#include "sim/log.hh"

namespace vg::crypto
{

namespace
{

/**
 * Word-level multiply-accumulate row: acc[0..n-1] += a * b[0..n-1].
 * @return the carry word out of acc[n-1].
 */
inline uint32_t
mulAddRow(uint32_t *acc, const uint32_t *b, size_t n, uint32_t a)
{
    uint64_t carry = 0;
    for (size_t j = 0; j < n; j++) {
        uint64_t cur = uint64_t(acc[j]) + uint64_t(a) * b[j] + carry;
        acc[j] = uint32_t(cur);
        carry = cur >> 32;
    }
    return uint32_t(carry);
}

} // namespace

BigNum::BigNum(uint64_t v)
{
    if (v != 0) {
        _limbs.push_back(uint32_t(v));
        if (v >> 32)
            _limbs.push_back(uint32_t(v >> 32));
    }
}

void
BigNum::trim()
{
    while (!_limbs.empty() && _limbs.back() == 0)
        _limbs.pop_back();
}

BigNum
BigNum::fromBytes(const std::vector<uint8_t> &bytes)
{
    BigNum n;
    for (uint8_t b : bytes) {
        n = n << 8;
        if (b) {
            if (n._limbs.empty())
                n._limbs.push_back(b);
            else
                n._limbs[0] |= b;
        }
    }
    return n;
}

std::vector<uint8_t>
BigNum::toBytes() const
{
    if (isZero())
        return {0};
    size_t bytes = (bitLength() + 7) / 8;
    return toBytesPadded(bytes);
}

std::vector<uint8_t>
BigNum::toBytesPadded(size_t len) const
{
    std::vector<uint8_t> out(len, 0);
    for (size_t i = 0; i < len; i++) {
        size_t bit_off = 8 * i;
        size_t limb = bit_off / 32;
        if (limb >= _limbs.size())
            break;
        out[len - 1 - i] = uint8_t(_limbs[limb] >> (bit_off % 32));
    }
    return out;
}

BigNum
BigNum::fromHex(const std::string &hex)
{
    BigNum n;
    for (char c : hex) {
        uint32_t digit;
        if (c >= '0' && c <= '9')
            digit = uint32_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = uint32_t(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            digit = uint32_t(c - 'A' + 10);
        else
            continue;
        n = n << 4;
        if (digit) {
            if (n._limbs.empty())
                n._limbs.push_back(digit);
            else
                n._limbs[0] |= digit;
        }
    }
    return n;
}

std::string
BigNum::toHex() const
{
    if (isZero())
        return "0";
    static const char *hex = "0123456789abcdef";
    std::string s;
    for (size_t i = _limbs.size(); i-- > 0;) {
        for (int shift = 28; shift >= 0; shift -= 4)
            s.push_back(hex[(_limbs[i] >> shift) & 0xf]);
    }
    size_t first = s.find_first_not_of('0');
    return s.substr(first);
}

size_t
BigNum::bitLength() const
{
    if (_limbs.empty())
        return 0;
    uint32_t top = _limbs.back();
    size_t bits = (_limbs.size() - 1) * 32;
    while (top) {
        bits++;
        top >>= 1;
    }
    return bits;
}

bool
BigNum::bit(size_t i) const
{
    size_t limb = i / 32;
    if (limb >= _limbs.size())
        return false;
    return (_limbs[limb] >> (i % 32)) & 1;
}

void
BigNum::setBit(size_t i)
{
    size_t limb = i / 32;
    if (limb >= _limbs.size())
        _limbs.resize(limb + 1, 0);
    _limbs[limb] |= uint32_t(1) << (i % 32);
}

int
BigNum::compare(const BigNum &other) const
{
    if (_limbs.size() != other._limbs.size())
        return _limbs.size() < other._limbs.size() ? -1 : 1;
    for (size_t i = _limbs.size(); i-- > 0;) {
        if (_limbs[i] != other._limbs[i])
            return _limbs[i] < other._limbs[i] ? -1 : 1;
    }
    return 0;
}

BigNum
BigNum::operator+(const BigNum &o) const
{
    BigNum out;
    size_t n = std::max(_limbs.size(), o._limbs.size());
    out._limbs.resize(n, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; i++) {
        uint64_t sum = carry;
        if (i < _limbs.size())
            sum += _limbs[i];
        if (i < o._limbs.size())
            sum += o._limbs[i];
        out._limbs[i] = uint32_t(sum);
        carry = sum >> 32;
    }
    if (carry)
        out._limbs.push_back(uint32_t(carry));
    return out;
}

BigNum
BigNum::operator-(const BigNum &o) const
{
    if (*this < o)
        sim::panic("BigNum subtraction underflow");
    BigNum out;
    out._limbs.resize(_limbs.size(), 0);
    int64_t borrow = 0;
    for (size_t i = 0; i < _limbs.size(); i++) {
        int64_t diff = int64_t(_limbs[i]) - borrow;
        if (i < o._limbs.size())
            diff -= int64_t(o._limbs[i]);
        if (diff < 0) {
            diff += int64_t(1) << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out._limbs[i] = uint32_t(diff);
    }
    out.trim();
    return out;
}

BigNum
BigNum::operator*(const BigNum &o) const
{
    if (isZero() || o.isZero())
        return BigNum();
    BigNum out;
    out._limbs.assign(_limbs.size() + o._limbs.size(), 0);
    for (size_t i = 0; i < _limbs.size(); i++) {
        out._limbs[i + o._limbs.size()] +=
            mulAddRow(out._limbs.data() + i, o._limbs.data(),
                      o._limbs.size(), _limbs[i]);
    }
    out.trim();
    return out;
}

BigNum
BigNum::operator<<(size_t bits) const
{
    if (isZero())
        return BigNum();
    size_t limb_shift = bits / 32;
    size_t bit_shift = bits % 32;
    BigNum out;
    out._limbs.assign(_limbs.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < _limbs.size(); i++) {
        out._limbs[i + limb_shift] |= _limbs[i] << bit_shift;
        if (bit_shift)
            out._limbs[i + limb_shift + 1] |=
                uint32_t(uint64_t(_limbs[i]) >> (32 - bit_shift));
    }
    out.trim();
    return out;
}

BigNum
BigNum::operator>>(size_t bits) const
{
    size_t limb_shift = bits / 32;
    size_t bit_shift = bits % 32;
    if (limb_shift >= _limbs.size())
        return BigNum();
    BigNum out;
    out._limbs.assign(_limbs.size() - limb_shift, 0);
    for (size_t i = 0; i < out._limbs.size(); i++) {
        out._limbs[i] = _limbs[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < _limbs.size())
            out._limbs[i] |= uint32_t(
                uint64_t(_limbs[i + limb_shift + 1]) << (32 - bit_shift));
    }
    out.trim();
    return out;
}

void
BigNum::divmod(const BigNum &divisor, BigNum &quotient,
               BigNum &remainder) const
{
    if (divisor.isZero())
        sim::panic("BigNum division by zero");
    quotient = BigNum();
    remainder = BigNum();
    if (*this < divisor) {
        remainder = *this;
        return;
    }

    // Single-limb divisor: schoolbook short division.
    if (divisor._limbs.size() == 1) {
        uint64_t d = divisor._limbs[0];
        quotient._limbs.assign(_limbs.size(), 0);
        uint64_t rem = 0;
        for (size_t i = _limbs.size(); i-- > 0;) {
            uint64_t cur = (rem << 32) | _limbs[i];
            quotient._limbs[i] = uint32_t(cur / d);
            rem = cur % d;
        }
        quotient.trim();
        remainder = BigNum(rem);
        return;
    }

    // Knuth Algorithm D (TAOCP 4.3.1) with 32-bit limbs.
    size_t n = divisor._limbs.size();
    size_t m = _limbs.size() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    unsigned shift = 0;
    uint32_t top = divisor._limbs[n - 1];
    while (!(top & 0x80000000u)) {
        top <<= 1;
        shift++;
    }
    BigNum u = *this << shift;
    BigNum v = divisor << shift;
    u._limbs.resize(_limbs.size() + 1, 0); // u has m+n+1 limbs

    quotient._limbs.assign(m + 1, 0);
    const uint64_t base = uint64_t(1) << 32;

    for (size_t j = m + 1; j-- > 0;) {
        // D3: estimate q_hat from the top two limbs of u against the
        // top limb of v, then refine with the second limb.
        uint64_t num = (uint64_t(u._limbs[j + n]) << 32) |
                       u._limbs[j + n - 1];
        uint64_t q_hat = num / v._limbs[n - 1];
        uint64_t r_hat = num % v._limbs[n - 1];
        if (q_hat >= base) {
            q_hat = base - 1;
            r_hat = num - q_hat * v._limbs[n - 1];
        }
        while (r_hat < base &&
               q_hat * v._limbs[n - 2] >
                   ((r_hat << 32) | u._limbs[j + n - 2])) {
            q_hat--;
            r_hat += v._limbs[n - 1];
        }

        // D4: multiply-and-subtract q_hat * v from u[j .. j+n].
        int64_t borrow = 0;
        uint64_t carry = 0;
        for (size_t i = 0; i < n; i++) {
            uint64_t prod = q_hat * v._limbs[i] + carry;
            carry = prod >> 32;
            int64_t diff = int64_t(u._limbs[i + j]) -
                           int64_t(prod & 0xffffffffull) - borrow;
            if (diff < 0) {
                diff += int64_t(base);
                borrow = 1;
            } else {
                borrow = 0;
            }
            u._limbs[i + j] = uint32_t(diff);
        }
        int64_t diff = int64_t(u._limbs[j + n]) - int64_t(carry) - borrow;
        bool negative = diff < 0;
        u._limbs[j + n] = uint32_t(diff);

        // D5/D6: if we overshot, add v back once and decrement q_hat.
        if (negative) {
            q_hat--;
            uint64_t add_carry = 0;
            for (size_t i = 0; i < n; i++) {
                uint64_t sum = uint64_t(u._limbs[i + j]) + v._limbs[i] +
                               add_carry;
                u._limbs[i + j] = uint32_t(sum);
                add_carry = sum >> 32;
            }
            u._limbs[j + n] += uint32_t(add_carry);
        }
        quotient._limbs[j] = uint32_t(q_hat);
    }

    quotient.trim();
    u._limbs.resize(n);
    u.trim();
    remainder = u >> shift;
}

BigNum
BigNum::operator/(const BigNum &o) const
{
    BigNum q, r;
    divmod(o, q, r);
    return q;
}

BigNum
BigNum::operator%(const BigNum &o) const
{
    BigNum q, r;
    divmod(o, q, r);
    return r;
}

BigNum
BigNum::modExp(const BigNum &exp, const BigNum &mod, bool fast) const
{
    if (mod.isZero())
        sim::panic("BigNum modExp with zero modulus");
    // Montgomery reduction needs gcd(mod, 2^32) == 1, so even moduli
    // (and the trivial mod == 1) take the reference ladder.
    if (fast && mod.isOdd() && mod != BigNum(1))
        return modExpMont(exp, mod);
    BigNum result(1);
    result = result % mod;
    BigNum base = *this % mod;
    size_t bits = exp.bitLength();
    for (size_t i = 0; i < bits; i++) {
        if (exp.bit(i))
            result = (result * base) % mod;
        base = (base * base) % mod;
    }
    return result;
}

BigNum
BigNum::modExpMont(const BigNum &exp, const BigNum &mod) const
{
    if (exp.isZero())
        return BigNum(1); // mod > 1 here
    const std::vector<uint32_t> &n = mod._limbs;
    const size_t k = n.size();

    // n0inv = -n[0]^-1 mod 2^32 by Newton iteration (n odd: each step
    // doubles the number of correct low bits, starting from 3).
    uint32_t inv = n[0];
    for (int i = 0; i < 4; i++)
        inv *= 2 - n[0] * inv;
    const uint32_t n0inv = uint32_t(0) - inv;

    // R = 2^(32k); R^2 mod n converts operands into the Montgomery
    // domain via one montMul.
    BigNum r2big = (BigNum(1) << (64 * k)) % mod;
    std::vector<uint32_t> r2 = r2big._limbs;
    r2.resize(k, 0);

    // CIOS Montgomery multiply: out = a * b * R^-1 mod n. Operands are
    // k limbs, < n; out may alias a or b.
    std::vector<uint32_t> t(k + 2);
    auto montMul = [&](const std::vector<uint32_t> &a,
                       const std::vector<uint32_t> &b,
                       std::vector<uint32_t> &out) {
        std::fill(t.begin(), t.end(), 0);
        for (size_t i = 0; i < k; i++) {
            // t += a[i] * b
            uint64_t cur = uint64_t(t[k]) +
                           mulAddRow(t.data(), b.data(), k, a[i]);
            t[k] = uint32_t(cur);
            t[k + 1] = uint32_t(cur >> 32);

            // t = (t + m*n) / 2^32 — m chosen so the low word cancels.
            uint32_t m = t[0] * n0inv;
            uint64_t carry =
                (uint64_t(t[0]) + uint64_t(m) * n[0]) >> 32;
            for (size_t j = 1; j < k; j++) {
                uint64_t c = uint64_t(t[j]) + uint64_t(m) * n[j] + carry;
                t[j - 1] = uint32_t(c);
                carry = c >> 32;
            }
            uint64_t c = uint64_t(t[k]) + carry;
            t[k - 1] = uint32_t(c);
            t[k] = t[k + 1] + uint32_t(c >> 32);
        }

        // t < 2n, so at most one final subtraction of n.
        bool ge = true;
        if (t[k] == 0) {
            for (size_t j = k; j-- > 0;) {
                if (t[j] != n[j]) {
                    ge = t[j] > n[j];
                    break;
                }
            }
        }
        out.resize(k);
        if (ge) {
            int64_t borrow = 0;
            for (size_t j = 0; j < k; j++) {
                int64_t diff = int64_t(t[j]) - int64_t(n[j]) - borrow;
                borrow = diff < 0;
                if (diff < 0)
                    diff += int64_t(1) << 32;
                out[j] = uint32_t(diff);
            }
        } else {
            std::copy(t.begin(), t.begin() + long(k), out.begin());
        }
    };

    // 16-entry window table: tbl[i] = mont(base^i) for i >= 1.
    BigNum base = *this % mod;
    std::vector<uint32_t> bm = base._limbs;
    bm.resize(k, 0);
    std::vector<std::vector<uint32_t>> tbl(16);
    montMul(bm, r2, tbl[1]);
    for (int i = 2; i < 16; i++)
        montMul(tbl[i - 1], tbl[1], tbl[i]);

    // 4-bit fixed windows, most significant first. Windows are
    // nibble-aligned so they never straddle a limb.
    auto nibble = [&](size_t idx) -> uint32_t {
        size_t bit_off = idx * 4;
        size_t limb = bit_off / 32;
        if (limb >= exp._limbs.size())
            return 0;
        return (exp._limbs[limb] >> (bit_off % 32)) & 0xf;
    };
    size_t windows = (exp.bitLength() + 3) / 4;

    std::vector<uint32_t> acc = tbl[nibble(windows - 1)]; // top != 0
    for (size_t idx = windows - 1; idx-- > 0;) {
        for (int s = 0; s < 4; s++)
            montMul(acc, acc, acc);
        uint32_t nib = nibble(idx);
        if (nib)
            montMul(acc, tbl[nib], acc);
    }

    // Convert out of the Montgomery domain: multiply by 1.
    std::vector<uint32_t> one(k, 0);
    one[0] = 1;
    std::vector<uint32_t> res;
    montMul(acc, one, res);

    BigNum out;
    out._limbs = std::move(res);
    out.trim();
    return out;
}

BigNum
BigNum::gcd(BigNum a, BigNum b)
{
    while (!b.isZero()) {
        BigNum r = a % b;
        a = b;
        b = r;
    }
    return a;
}

BigNum
BigNum::modInverse(const BigNum &mod, bool &ok) const
{
    // Iterative extended Euclid tracking only the coefficient of *this,
    // using (sign, magnitude) pairs to stay within unsigned arithmetic.
    BigNum r0 = mod, r1 = *this % mod;
    BigNum t0, t1(1);
    bool t0_neg = false, t1_neg = false;

    while (!r1.isZero()) {
        BigNum q, r2;
        r0.divmod(r1, q, r2);

        // t2 = t0 - q * t1
        BigNum qt = q * t1;
        BigNum t2;
        bool t2_neg;
        if (t0_neg == t1_neg) {
            // t0 and q*t1 have the same sign: real subtraction.
            if (t0 >= qt) {
                t2 = t0 - qt;
                t2_neg = t0_neg;
            } else {
                t2 = qt - t0;
                t2_neg = !t0_neg;
            }
        } else {
            t2 = t0 + qt;
            t2_neg = t0_neg;
        }

        r0 = r1;
        r1 = r2;
        t0 = t1;
        t0_neg = t1_neg;
        t1 = t2;
        t1_neg = t2_neg;
    }

    if (r0 != BigNum(1)) {
        ok = false;
        return BigNum();
    }
    ok = true;
    if (t0_neg)
        return mod - (t0 % mod);
    return t0 % mod;
}

BigNum
BigNum::random(CtrDrbg &rng, const BigNum &bound)
{
    if (bound.isZero())
        sim::panic("BigNum::random with zero bound");
    size_t bytes = (bound.bitLength() + 7) / 8;
    while (true) {
        BigNum candidate = fromBytes(rng.generate(bytes));
        if (candidate < bound)
            return candidate;
    }
}

BigNum
BigNum::randomBits(CtrDrbg &rng, size_t bits)
{
    size_t bytes = (bits + 7) / 8;
    BigNum n = fromBytes(rng.generate(bytes));
    // Clear excess high bits, then force the top bit.
    while (n.bitLength() > bits)
        n = n >> 1;
    n.setBit(bits - 1);
    return n;
}

bool
BigNum::isProbablePrime(CtrDrbg &rng, int rounds) const
{
    static const uint32_t small_primes[] = {2,  3,  5,  7,  11, 13,
                                            17, 19, 23, 29, 31, 37};
    if (isZero() || *this == BigNum(1))
        return false;
    for (uint32_t p : small_primes) {
        BigNum bp(p);
        if (*this == bp)
            return true;
        if ((*this % bp).isZero())
            return false;
    }
    if (!isOdd())
        return false;

    BigNum one(1), two(2);
    BigNum n_minus_1 = *this - one;
    BigNum d = n_minus_1;
    size_t s = 0;
    while (!d.isOdd()) {
        d = d >> 1;
        s++;
    }

    for (int round = 0; round < rounds; round++) {
        BigNum a = random(rng, n_minus_1 - two) + two;
        BigNum x = a.modExp(d, *this);
        if (x == one || x == n_minus_1)
            continue;
        bool composite = true;
        for (size_t i = 1; i < s; i++) {
            x = (x * x) % *this;
            if (x == n_minus_1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

} // namespace vg::crypto
