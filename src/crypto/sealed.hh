/**
 * @file
 * Authenticated encryption ("sealing") built from AES-CTR + HMAC-SHA256
 * in an encrypt-then-MAC construction.
 *
 * Reused in three places that the paper describes separately:
 *  - the TPM seals the Virtual Ghost private key (S 4.4),
 *  - the VG VM encrypts+MACs ghost pages before swap-out (S 3.3),
 *  - applications protect file data written through the hostile OS
 *    (S 3.3, encrypted checksum scheme).
 */

#ifndef VG_CRYPTO_SEALED_HH
#define VG_CRYPTO_SEALED_HH

#include <cstdint>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/sha256.hh"

namespace vg::crypto
{

class CtrDrbg;

/** A sealed (encrypted and authenticated) blob. */
struct SealedBlob
{
    AesBlock nonce{};
    std::vector<uint8_t> ciphertext;
    Digest mac{};

    /** Flat wire format: nonce || mac || ciphertext. */
    std::vector<uint8_t> serialize() const;
    static SealedBlob deserialize(const std::vector<uint8_t> &bytes,
                                  bool &ok);
};

/**
 * Seal @p plain under @p key with a fresh random nonce.
 *
 * @param aad optional associated data bound into the MAC (e.g. a page's
 *            virtual address for swap, so pages cannot be swapped back
 *            to the wrong location).
 * @param fast use the cached derived-key fast path (default); the
 *             reference path re-derives both subkeys per call. Blobs
 *             are bit-identical either way.
 */
SealedBlob seal(const AesKey &key, CtrDrbg &rng,
                const std::vector<uint8_t> &plain,
                const std::vector<uint8_t> &aad = {}, bool fast = true);

/** One element of a sealBatch() call: plaintext plus the associated
 *  data bound into its MAC. */
struct SealInput
{
    std::vector<uint8_t> plain;
    std::vector<uint8_t> aad;
};

/**
 * Seal a batch of plaintexts under one key in a scatter-gather
 * pipeline: the KDF passes, AES key schedule, and HMAC pad states are
 * set up once and reused across the whole batch (the per-call setup
 * that seal() pays every time). Nonces are drawn from @p rng in batch
 * order, so the output is bit-identical to calling seal() on each
 * element in sequence.
 */
std::vector<SealedBlob> sealBatch(const AesKey &key, CtrDrbg &rng,
                                  const std::vector<SealInput> &batch,
                                  bool fast = true);

/**
 * Verify and decrypt a sealed blob.
 * @param ok false if the MAC (over aad || nonce || ciphertext) fails.
 */
std::vector<uint8_t> unseal(const AesKey &key, const SealedBlob &blob,
                            bool &ok,
                            const std::vector<uint8_t> &aad = {},
                            bool fast = true);

} // namespace vg::crypto

#endif // VG_CRYPTO_SEALED_HH
