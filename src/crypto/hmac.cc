#include "crypto/hmac.hh"

#include <cstring>

namespace vg::crypto
{

Digest
hmacSha256(const std::vector<uint8_t> &key, const void *data, size_t len)
{
    uint8_t k[64];
    std::memset(k, 0, sizeof(k));
    if (key.size() > 64) {
        Digest kd = Sha256::hash(key.data(), key.size());
        std::memcpy(k, kd.data(), kd.size());
    } else {
        std::memcpy(k, key.data(), key.size());
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; i++) {
        ipad[i] = uint8_t(k[i] ^ 0x36);
        opad[i] = uint8_t(k[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, len);
    Digest inner_digest = inner.final();

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.final();
}

Digest
hmacSha256(const std::vector<uint8_t> &key, const std::vector<uint8_t> &data)
{
    return hmacSha256(key, data.data(), data.size());
}

bool
digestEqual(const Digest &a, const Digest &b)
{
    uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); i++)
        diff |= uint8_t(a[i] ^ b[i]);
    return diff == 0;
}

} // namespace vg::crypto
