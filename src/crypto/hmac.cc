#include "crypto/hmac.hh"

#include <cstring>

namespace vg::crypto
{

namespace
{

/** Normalize a key to one 64-byte block (hash if longer). */
void
keyBlock(const std::vector<uint8_t> &key, uint8_t k[64], bool fast)
{
    std::memset(k, 0, 64);
    if (key.size() > 64) {
        Digest kd = Sha256::hash(key.data(), key.size(), fast);
        std::memcpy(k, kd.data(), kd.size());
    } else if (!key.empty()) {
        std::memcpy(k, key.data(), key.size());
    }
}

} // namespace

HmacSha256::HmacSha256(const std::vector<uint8_t> &key, bool fast)
    : _inner(fast), _outer(fast)
{
    uint8_t k[64];
    keyBlock(key, k, fast);

    uint8_t pad[64];
    for (int i = 0; i < 64; i++)
        pad[i] = uint8_t(k[i] ^ 0x36);
    _inner.update(pad, 64);
    for (int i = 0; i < 64; i++)
        pad[i] = uint8_t(k[i] ^ 0x5c);
    _outer.update(pad, 64);
}

Digest
HmacSha256::finish(Sha256 inner) const
{
    Digest inner_digest = inner.final();
    Sha256 outer = _outer;
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.final();
}

Digest
HmacSha256::mac(const void *data, size_t len) const
{
    Sha256 inner = _inner;
    inner.update(data, len);
    return finish(inner);
}

Digest
hmacSha256(const std::vector<uint8_t> &key, const void *data, size_t len,
           bool fast)
{
    uint8_t k[64];
    keyBlock(key, k, fast);

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; i++) {
        ipad[i] = uint8_t(k[i] ^ 0x36);
        opad[i] = uint8_t(k[i] ^ 0x5c);
    }

    Sha256 inner(fast);
    inner.update(ipad, 64);
    inner.update(data, len);
    Digest inner_digest = inner.final();

    Sha256 outer(fast);
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.final();
}

Digest
hmacSha256(const std::vector<uint8_t> &key, const std::vector<uint8_t> &data,
           bool fast)
{
    return hmacSha256(key, data.data(), data.size(), fast);
}

bool
digestEqual(const Digest &a, const Digest &b)
{
    uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); i++)
        diff |= uint8_t(a[i] ^ b[i]);
    return diff == 0;
}

} // namespace vg::crypto
