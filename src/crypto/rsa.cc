#include "crypto/rsa.hh"

#include <cstring>

#include "crypto/drbg.hh"
#include "sim/log.hh"

namespace vg::crypto
{

namespace
{

/** Append a length-prefixed big-endian integer to @p out. */
void
putField(std::vector<uint8_t> &out, const BigNum &n)
{
    std::vector<uint8_t> bytes = n.toBytes();
    out.push_back(uint8_t(bytes.size() >> 8));
    out.push_back(uint8_t(bytes.size()));
    out.insert(out.end(), bytes.begin(), bytes.end());
}

/** Read a length-prefixed integer; returns false on truncation. */
bool
getField(const std::vector<uint8_t> &in, size_t &off, BigNum &n)
{
    if (off + 2 > in.size())
        return false;
    size_t len = (size_t(in[off]) << 8) | in[off + 1];
    off += 2;
    if (off + len > in.size())
        return false;
    n = BigNum::fromBytes(
        std::vector<uint8_t>(in.begin() + off, in.begin() + off + len));
    off += len;
    return true;
}

BigNum
generatePrime(CtrDrbg &rng, size_t bits)
{
    while (true) {
        BigNum candidate = BigNum::randomBits(rng, bits);
        if (!candidate.isOdd())
            candidate = candidate + BigNum(1);
        if (candidate.isProbablePrime(rng))
            return candidate;
    }
}

} // namespace

std::vector<uint8_t>
RsaPublicKey::serialize() const
{
    std::vector<uint8_t> out;
    putField(out, n);
    putField(out, e);
    return out;
}

RsaPublicKey
RsaPublicKey::deserialize(const std::vector<uint8_t> &bytes, bool &ok)
{
    RsaPublicKey key;
    size_t off = 0;
    ok = getField(bytes, off, key.n) && getField(bytes, off, key.e);
    return key;
}

std::vector<uint8_t>
RsaPrivateKey::serialize() const
{
    std::vector<uint8_t> out;
    putField(out, n);
    putField(out, e);
    putField(out, d);
    putField(out, p);
    putField(out, q);
    return out;
}

RsaPrivateKey
RsaPrivateKey::deserialize(const std::vector<uint8_t> &bytes, bool &ok)
{
    RsaPrivateKey key;
    size_t off = 0;
    ok = getField(bytes, off, key.n) && getField(bytes, off, key.e) &&
         getField(bytes, off, key.d) && getField(bytes, off, key.p) &&
         getField(bytes, off, key.q);
    return key;
}

RsaPrivateKey
rsaGenerate(CtrDrbg &rng, size_t bits)
{
    if (bits < 128)
        sim::fatal("rsaGenerate: modulus too small (%zu bits)", bits);

    BigNum one(1);
    BigNum e(65537);
    while (true) {
        BigNum p = generatePrime(rng, bits / 2);
        BigNum q = generatePrime(rng, bits - bits / 2);
        if (p == q)
            continue;
        BigNum n = p * q;
        BigNum phi = (p - one) * (q - one);
        if (BigNum::gcd(e, phi) != one)
            continue;
        bool ok = false;
        BigNum d = e.modInverse(phi, ok);
        if (!ok)
            continue;
        RsaPrivateKey key;
        key.n = n;
        key.e = e;
        key.d = d;
        key.p = p;
        key.q = q;
        return key;
    }
}

std::vector<uint8_t>
rsaEncrypt(const RsaPublicKey &key, CtrDrbg &rng,
           const std::vector<uint8_t> &message, bool fast)
{
    size_t k = key.modulusBytes();
    if (message.size() + 11 > k)
        sim::fatal("rsaEncrypt: message too long (%zu bytes for %zu)",
                   message.size(), k);

    // EB = 00 || 02 || nonzero padding || 00 || message
    std::vector<uint8_t> eb(k, 0);
    eb[1] = 0x02;
    size_t pad_len = k - 3 - message.size();
    for (size_t i = 0; i < pad_len; i++) {
        uint8_t b = 0;
        while (b == 0)
            rng.generate(&b, 1);
        eb[2 + i] = b;
    }
    eb[2 + pad_len] = 0x00;
    std::memcpy(eb.data() + 3 + pad_len, message.data(), message.size());

    BigNum m = BigNum::fromBytes(eb);
    BigNum c = m.modExp(key.e, key.n, fast);
    return c.toBytesPadded(k);
}

std::vector<uint8_t>
rsaDecrypt(const RsaPrivateKey &key, const std::vector<uint8_t> &cipher,
           bool &ok, bool fast)
{
    ok = false;
    size_t k = key.publicKey().modulusBytes();
    if (cipher.size() != k)
        return {};

    BigNum c = BigNum::fromBytes(cipher);
    if (c >= key.n)
        return {};
    BigNum m = c.modExp(key.d, key.n, fast);
    std::vector<uint8_t> eb = m.toBytesPadded(k);

    if (eb.size() < 11 || eb[0] != 0x00 || eb[1] != 0x02)
        return {};
    size_t i = 2;
    while (i < eb.size() && eb[i] != 0x00)
        i++;
    if (i == eb.size() || i < 10)
        return {};
    ok = true;
    return std::vector<uint8_t>(eb.begin() + i + 1, eb.end());
}

namespace
{

/** EMSA-style deterministic padding of SHA-256(message). */
std::vector<uint8_t>
signaturePad(const std::vector<uint8_t> &message, size_t k, bool fast)
{
    Digest h = Sha256::hash(message.data(), message.size(), fast);
    if (k < h.size() + 11)
        sim::fatal("rsaSign: %zu-byte modulus cannot hold a SHA-256 "
                   "signature (need >= 43 bytes, i.e. >= 344-bit "
                   "keys)",
                   k);
    std::vector<uint8_t> eb(k, 0xff);
    eb[0] = 0x00;
    eb[1] = 0x01;
    eb[k - h.size() - 1] = 0x00;
    std::memcpy(eb.data() + k - h.size(), h.data(), h.size());
    return eb;
}

} // namespace

std::vector<uint8_t>
rsaSign(const RsaPrivateKey &key, const std::vector<uint8_t> &message,
        bool fast)
{
    size_t k = key.publicKey().modulusBytes();
    BigNum m = BigNum::fromBytes(signaturePad(message, k, fast));
    BigNum s = m.modExp(key.d, key.n, fast);
    return s.toBytesPadded(k);
}

bool
rsaVerify(const RsaPublicKey &key, const std::vector<uint8_t> &message,
          const std::vector<uint8_t> &signature, bool fast)
{
    size_t k = key.modulusBytes();
    if (signature.size() != k)
        return false;
    BigNum s = BigNum::fromBytes(signature);
    if (s >= key.n)
        return false;
    BigNum m = s.modExp(key.e, key.n, fast);
    return m.toBytesPadded(k) == signaturePad(message, k, fast);
}

} // namespace vg::crypto
