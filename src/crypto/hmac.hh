/**
 * @file
 * HMAC-SHA256 (RFC 2104) message authentication.
 *
 * Used to sign native-code translations, MAC swapped ghost pages, and
 * provide the encrypt-then-MAC construction for secure application file
 * I/O.
 */

#ifndef VG_CRYPTO_HMAC_HH
#define VG_CRYPTO_HMAC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.hh"

namespace vg::crypto
{

/** Compute HMAC-SHA256 of @p len bytes at @p data under @p key. */
Digest hmacSha256(const std::vector<uint8_t> &key, const void *data,
                  size_t len);

/** HMAC over a byte vector. */
Digest hmacSha256(const std::vector<uint8_t> &key,
                  const std::vector<uint8_t> &data);

/** Constant-time digest comparison. */
bool digestEqual(const Digest &a, const Digest &b);

} // namespace vg::crypto

#endif // VG_CRYPTO_HMAC_HH
