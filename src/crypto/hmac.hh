/**
 * @file
 * HMAC-SHA256 (RFC 2104) message authentication.
 *
 * Used to sign native-code translations, MAC swapped ghost pages, and
 * provide the encrypt-then-MAC construction for secure application file
 * I/O.
 *
 * The HmacSha256 class precomputes the ipad/opad key states once per
 * key so repeated MACs under the same key skip two compression calls
 * and the key-block setup; the free functions keep the per-call
 * construction as the reference path. Tags are bit-identical either
 * way.
 */

#ifndef VG_CRYPTO_HMAC_HH
#define VG_CRYPTO_HMAC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.hh"

namespace vg::crypto
{

/**
 * Keyed HMAC-SHA256 context with precomputed inner/outer pad states.
 * Cheap to copy; one construction amortizes the key schedule over any
 * number of MACs.
 */
class HmacSha256
{
  public:
    explicit HmacSha256(const std::vector<uint8_t> &key, bool fast = true);

    /** Start a streaming MAC: a hasher mid-way through ipad||message. */
    Sha256 begin() const { return _inner; }

    /** Finish a streaming MAC started with begin(). */
    Digest finish(Sha256 inner) const;

    /** One-shot MAC of @p len bytes at @p data. */
    Digest mac(const void *data, size_t len) const;

    /** One-shot MAC of a byte vector. */
    Digest
    mac(const std::vector<uint8_t> &data) const
    {
        return mac(data.data(), data.size());
    }

  private:
    Sha256 _inner; ///< State after absorbing the ipad block.
    Sha256 _outer; ///< State after absorbing the opad block.
};

/** Compute HMAC-SHA256 of @p len bytes at @p data under @p key. */
Digest hmacSha256(const std::vector<uint8_t> &key, const void *data,
                  size_t len, bool fast = true);

/** HMAC over a byte vector. */
Digest hmacSha256(const std::vector<uint8_t> &key,
                  const std::vector<uint8_t> &data, bool fast = true);

/** Constant-time digest comparison. */
bool digestEqual(const Digest &a, const Digest &b);

} // namespace vg::crypto

#endif // VG_CRYPTO_HMAC_HH
