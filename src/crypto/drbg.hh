/**
 * @file
 * Deterministic random bit generator (simplified CTR-DRBG over AES-128).
 *
 * Backs the Virtual Ghost VM's trusted random-number instruction
 * (S 4.7), which defeats Iago attacks that feed applications non-random
 * bytes through /dev/random. Also used for nonce/IV generation in the
 * key manager. Seeding is explicit so tests are reproducible.
 */

#ifndef VG_CRYPTO_DRBG_HH
#define VG_CRYPTO_DRBG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.hh"

namespace vg::crypto
{

/** Counter-mode DRBG with explicit reseeding. */
class CtrDrbg
{
  public:
    /** Construct from a 16-byte seed key and nonce. */
    CtrDrbg(const AesKey &seed_key, const AesBlock &nonce);

    /** Construct from arbitrary seed material (hashed down). */
    explicit CtrDrbg(const std::vector<uint8_t> &seed_material);

    /** Fill @p len bytes at @p out with pseudo-random data. */
    void generate(void *out, size_t len);

    /** Convenience: return @p len random bytes. */
    std::vector<uint8_t> generate(size_t len);

    /** Return a uniformly distributed 64-bit value. */
    uint64_t next64();

    /** Return a value in [0, bound) (bound must be nonzero). */
    uint64_t nextBounded(uint64_t bound);

    /** Mix additional entropy into the state. */
    void reseed(const std::vector<uint8_t> &material);

  private:
    void step(uint8_t out[16]);

    AesKey _key;
    AesBlock _counter;
    /** Expanded schedule for _key; rebuilt on reseed. */
    Aes128 _aes;
};

} // namespace vg::crypto

#endif // VG_CRYPTO_DRBG_HH
