#include "ghost/runtime.hh"

#include <cstring>

namespace vg::ghost
{

GhostRuntime::GhostRuntime(kern::UserApi &api)
    : _api(api), _heap(api), _rng([&api]() {
          // Seed from the trusted VM generator, never the OS.
          std::vector<uint8_t> seed(32);
          api.secureRandom(seed.data(), seed.size());
          return seed;
      }())
{
    _appKey = _api.getKey();
}

uint64_t
GhostRuntime::signal(int signum, std::function<void(int)> handler)
{
    // The wrapper registers with sva.permitFunction (inside
    // installSignalHandler when permit_with_sva) before the kernel
    // learns the handler address — so sva.ipush.function will accept
    // only this function.
    return _api.installSignalHandler(signum, std::move(handler), true);
}

hw::Vaddr
GhostRuntime::bounce(uint64_t len)
{
    if (_bounceLen >= len && _bounceVa != 0)
        return _bounceVa;
    uint64_t rounded = (len + hw::pageSize - 1) & ~(hw::pageSize - 1);
    if (_bounceVa != 0)
        _api.munmap(_bounceVa, _bounceLen);
    _bounceVa = _api.mmap(rounded);
    _bounceLen = rounded;
    return _bounceVa;
}

bool
GhostRuntime::writeFile(const std::string &path,
                        const std::vector<uint8_t> &data)
{
    int fd = _api.open(path, true);
    if (fd < 0)
        return false;
    bool ok = true;
    if (!data.empty()) {
        hw::Vaddr buf = bounce(data.size());
        ok = buf != 0 &&
             _api.copyToUser(buf, data.data(), data.size()) &&
             _api.write(fd, buf, data.size()) ==
                 int64_t(data.size());
    }
    _api.close(fd);
    return ok;
}

bool
GhostRuntime::readFile(const std::string &path,
                       std::vector<uint8_t> &out)
{
    kern::FileStat st;
    if (_api.stat(path, st) != 0)
        return false;
    int fd = _api.open(path);
    if (fd < 0)
        return false;
    out.resize(st.size);
    bool ok = true;
    if (st.size > 0) {
        hw::Vaddr buf = bounce(st.size);
        ok = buf != 0 && _api.read(fd, buf, st.size) ==
                             int64_t(st.size) &&
             _api.copyFromUser(buf, out.data(), st.size);
    }
    _api.close(fd);
    return ok;
}

bool
GhostRuntime::writeSecureFile(const std::string &path,
                              const std::vector<uint8_t> &plain)
{
    if (!_appKey)
        return false;
    _api.kernel().ctx().chargeAes(plain.size());
    _api.kernel().ctx().chargeSha(plain.size());
    crypto::SealedBlob blob =
        crypto::seal(*_appKey, _rng, plain, {},
                     _api.kernel().ctx().config().cryptoFastPath);
    return writeFile(path, blob.serialize());
}

bool
GhostRuntime::readSecureFile(const std::string &path,
                             std::vector<uint8_t> &plain)
{
    if (!_appKey)
        return false;
    std::vector<uint8_t> raw;
    if (!readFile(path, raw))
        return false;
    bool ok = false;
    crypto::SealedBlob blob = crypto::SealedBlob::deserialize(raw, ok);
    if (!ok)
        return false;
    _api.kernel().ctx().chargeAes(blob.ciphertext.size());
    _api.kernel().ctx().chargeSha(blob.ciphertext.size());
    plain = crypto::unseal(*_appKey, blob, ok, {},
                           _api.kernel().ctx().config().cryptoFastPath);
    return ok;
}

namespace
{

std::vector<uint8_t>
versionAad(uint64_t version)
{
    std::vector<uint8_t> aad(12);
    std::memcpy(aad.data(), "vgver", 5);
    std::memcpy(aad.data() + 5, &version, sizeof(version) - 1);
    return aad;
}

} // namespace

bool
GhostRuntime::writeVersionedFile(const std::string &path,
                                 const std::vector<uint8_t> &plain)
{
    if (!_appKey)
        return false;
    // A fresh monotonic value from the TPM, via the VM.
    uint64_t version = _api.kernel().vm().counterIncrement(_api.pid());
    if (version == 0)
        return false;
    _api.kernel().ctx().chargeAes(plain.size());
    _api.kernel().ctx().chargeSha(plain.size());
    crypto::SealedBlob blob =
        crypto::seal(*_appKey, _rng, plain, versionAad(version),
                     _api.kernel().ctx().config().cryptoFastPath);
    return writeFile(path, blob.serialize());
}

bool
GhostRuntime::readVersionedFile(const std::string &path,
                                std::vector<uint8_t> &plain)
{
    if (!_appKey)
        return false;
    std::vector<uint8_t> raw;
    if (!readFile(path, raw))
        return false;
    bool ok = false;
    crypto::SealedBlob blob = crypto::SealedBlob::deserialize(raw, ok);
    if (!ok)
        return false;
    // Only the *current* counter value verifies: a replayed older
    // file was sealed with a smaller version and fails the MAC.
    uint64_t version = _api.kernel().vm().counterRead(_api.pid());
    _api.kernel().ctx().chargeAes(blob.ciphertext.size());
    _api.kernel().ctx().chargeSha(blob.ciphertext.size());
    plain = crypto::unseal(*_appKey, blob, ok, versionAad(version),
                           _api.kernel().ctx().config().cryptoFastPath);
    return ok;
}

hw::Vaddr
GhostRuntime::stashSecret(const std::vector<uint8_t> &secret)
{
    hw::Vaddr va = _heap.gmalloc(secret.size());
    if (va != 0)
        _heap.write(va, secret.data(), secret.size());
    return va;
}

std::vector<uint8_t>
GhostRuntime::fetchSecret(hw::Vaddr va, uint64_t len)
{
    std::vector<uint8_t> out(len);
    if (!_heap.read(va, out.data(), len))
        out.clear();
    return out;
}

} // namespace vg::ghost
