/**
 * @file
 * Ghosting application runtime: the syscall wrapper library of S 6.
 *
 * Provides the conveniences the paper's 667-line wrapper library
 * provides: bounce buffers in traditional memory for syscall data,
 * signal()/sigaction() wrappers that register handlers with
 * sva.permitFunction before telling the kernel, and encrypt-then-MAC
 * file I/O under the application key.
 */

#ifndef VG_GHOST_RUNTIME_HH
#define VG_GHOST_RUNTIME_HH

#include <optional>
#include <string>
#include <vector>

#include "crypto/drbg.hh"
#include "crypto/sealed.hh"
#include "ghost/gmalloc.hh"

namespace vg::ghost
{

/** Per-process ghosting runtime. */
class GhostRuntime
{
  public:
    explicit GhostRuntime(kern::UserApi &api);

    kern::UserApi &api() { return _api; }
    GhostHeap &heap() { return _heap; }

    /** The application key fetched via sva.getKey() at startup
     *  (nullopt when the process has no bound app binary). */
    const std::optional<crypto::AesKey> &appKey() const
    {
        return _appKey;
    }

    // --- signal wrappers (S 4.6.1 / S 6) -------------------------------
    /** signal() wrapper: registers the handler with the VM before the
     *  kernel can learn about it. */
    uint64_t signal(int signum, std::function<void(int)> handler);

    // --- bounce-buffered I/O -------------------------------------------
    /** Write host bytes to a file through a traditional-memory bounce
     *  buffer (the data is OS-visible, as intended for public data). */
    bool writeFile(const std::string &path,
                   const std::vector<uint8_t> &data);

    /** Read a whole file via the bounce buffer. */
    bool readFile(const std::string &path, std::vector<uint8_t> &out);

    // --- secure file I/O (S 3.3) ----------------------------------------
    /** Seal under the app key and write: confidentiality + integrity
     *  against the hostile OS. */
    bool writeSecureFile(const std::string &path,
                         const std::vector<uint8_t> &plain);

    /** Read + verify + decrypt; false on tampering. */
    bool readSecureFile(const std::string &path,
                        std::vector<uint8_t> &plain);

    // --- rollback-protected files (paper S 10 future work) -------------
    /**
     * Like writeSecureFile, but additionally binds the blob to a
     * fresh TPM monotonic counter value, so the hostile OS cannot
     * substitute an *older* (validly sealed) version of the file.
     * One counter per application: the latest versioned write is the
     * only one that verifies.
     */
    bool writeVersionedFile(const std::string &path,
                            const std::vector<uint8_t> &plain);

    /** Read a versioned file; false on tampering OR rollback. */
    bool readVersionedFile(const std::string &path,
                           std::vector<uint8_t> &plain);

    /** Store a secret into fresh ghost memory; returns its address. */
    hw::Vaddr stashSecret(const std::vector<uint8_t> &secret);

    /** Fetch @p len bytes of a ghost-resident secret. */
    std::vector<uint8_t> fetchSecret(hw::Vaddr va, uint64_t len);

  private:
    hw::Vaddr bounce(uint64_t len);

    kern::UserApi &_api;
    GhostHeap _heap;
    std::optional<crypto::AesKey> _appKey;
    crypto::CtrDrbg _rng;
    hw::Vaddr _bounceVa = 0;
    uint64_t _bounceLen = 0;
};

} // namespace vg::ghost

#endif // VG_GHOST_RUNTIME_HH
