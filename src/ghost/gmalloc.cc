#include "ghost/gmalloc.hh"

#include <vector>

namespace vg::ghost
{

namespace
{

constexpr uint64_t alignment = 16;

uint64_t
roundUp(uint64_t v, uint64_t to)
{
    return (v + to - 1) & ~(to - 1);
}

} // namespace

bool
GhostHeap::grow(uint64_t bytes)
{
    uint64_t npages =
        std::max<uint64_t>(16, roundUp(bytes, hw::pageSize) /
                                   hw::pageSize);
    hw::Vaddr va = _api.allocGhost(npages);
    if (va == 0)
        return false;
    _free[va] = npages * hw::pageSize;
    _arena += npages * hw::pageSize;
    coalesce();
    return true;
}

void
GhostHeap::coalesce()
{
    auto it = _free.begin();
    while (it != _free.end()) {
        auto next = std::next(it);
        if (next != _free.end() &&
            it->first + it->second == next->first) {
            it->second += next->second;
            _free.erase(next);
        } else {
            ++it;
        }
    }
}

hw::Vaddr
GhostHeap::gmalloc(uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    bytes = roundUp(bytes, alignment);

    for (int attempt = 0; attempt < 2; attempt++) {
        for (auto it = _free.begin(); it != _free.end(); ++it) {
            if (it->second < bytes)
                continue;
            hw::Vaddr va = it->first;
            uint64_t remaining = it->second - bytes;
            _free.erase(it);
            if (remaining > 0)
                _free[va + bytes] = remaining;
            _live[va] = bytes;
            _inUse += bytes;
            return va;
        }
        if (!grow(bytes))
            return 0;
    }
    return 0;
}

hw::Vaddr
GhostHeap::gcalloc(uint64_t bytes)
{
    hw::Vaddr va = gmalloc(bytes);
    if (va != 0) {
        std::vector<uint8_t> zeros(bytes, 0);
        write(va, zeros.data(), bytes);
    }
    return va;
}

hw::Vaddr
GhostHeap::grealloc(hw::Vaddr va, uint64_t new_bytes)
{
    if (va == 0)
        return gmalloc(new_bytes);
    auto it = _live.find(va);
    if (it == _live.end())
        return 0;
    uint64_t old_bytes = it->second;
    if (roundUp(new_bytes, alignment) <= old_bytes)
        return va;

    hw::Vaddr nva = gmalloc(new_bytes);
    if (nva == 0)
        return 0;
    std::vector<uint8_t> tmp(old_bytes);
    read(va, tmp.data(), old_bytes);
    write(nva, tmp.data(), old_bytes);
    gfree(va);
    return nva;
}

void
GhostHeap::gfree(hw::Vaddr va)
{
    auto it = _live.find(va);
    if (it == _live.end())
        return;
    _inUse -= it->second;
    _free[it->first] = it->second;
    _live.erase(it);
    coalesce();
}

uint64_t
GhostHeap::blockSize(hw::Vaddr va) const
{
    auto it = _live.find(va);
    return it == _live.end() ? 0 : it->second;
}

bool
GhostHeap::write(hw::Vaddr va, const void *src, uint64_t len)
{
    return _api.ghostWrite(va, src, len);
}

bool
GhostHeap::read(hw::Vaddr va, void *dst, uint64_t len)
{
    return _api.ghostRead(va, dst, len);
}

} // namespace vg::ghost
