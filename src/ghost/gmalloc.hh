/**
 * @file
 * Ghost-memory heap allocator.
 *
 * The paper modifies the FreeBSD C library so malloc()/calloc()/
 * realloc() place heap objects in ghost memory (S 6). GhostHeap is
 * that allocator: a first-fit free-list allocator whose arena grows by
 * calling allocgm() through the UserApi. Returned addresses are ghost
 * virtual addresses; the owning application reads and writes them with
 * ghostRead()/ghostWrite() (user-privilege accesses), while the OS can
 * never see them.
 */

#ifndef VG_GHOST_GMALLOC_HH
#define VG_GHOST_GMALLOC_HH

#include <cstdint>
#include <map>

#include "kernel/kernel.hh"

namespace vg::ghost
{

/** First-fit ghost heap bound to one process. */
class GhostHeap
{
  public:
    explicit GhostHeap(kern::UserApi &api) : _api(api) {}

    /** Allocate @p bytes of ghost memory (16-byte aligned); 0 on
     *  failure. */
    hw::Vaddr gmalloc(uint64_t bytes);

    /** Allocate and zero. */
    hw::Vaddr gcalloc(uint64_t bytes);

    /** Resize preserving contents (may move). */
    hw::Vaddr grealloc(hw::Vaddr va, uint64_t new_bytes);

    /** Free a block previously returned by gmalloc/gcalloc. */
    void gfree(hw::Vaddr va);

    /** Convenience typed/bulk access through the API. */
    bool write(hw::Vaddr va, const void *src, uint64_t len);
    bool read(hw::Vaddr va, void *dst, uint64_t len);

    /** Bytes currently allocated to the caller. */
    uint64_t bytesInUse() const { return _inUse; }

    /** Bytes of ghost arena obtained from the VM. */
    uint64_t arenaBytes() const { return _arena; }

    /** Size of the block at @p va (0 if not an allocation). */
    uint64_t blockSize(hw::Vaddr va) const;

  private:
    /** Grow the arena by at least @p bytes. */
    bool grow(uint64_t bytes);
    void coalesce();

    kern::UserApi &_api;
    /** Free blocks: start -> size. */
    std::map<hw::Vaddr, uint64_t> _free;
    /** Live allocations: start -> size. */
    std::map<hw::Vaddr, uint64_t> _live;
    uint64_t _inUse = 0;
    uint64_t _arena = 0;
};

} // namespace vg::ghost

#endif // VG_GHOST_GMALLOC_HH
