/**
 * @file
 * The Kmem fast path (last-translation cache + page-chunked copies)
 * must be *observably identical* to the reference per-access path:
 * same return values, same simulated cycles, same stat counters, same
 * memory contents. VgConfig::kmemFastPath=false selects the reference
 * implementation; these tests run both side by side.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <optional>

#include "crypto/drbg.hh"
#include "hw/disk.hh"
#include "hw/iommu.hh"
#include "hw/mmu.hh"
#include "hw/phys_mem.hh"
#include "hw/tpm.hh"
#include "kernel/bcache.hh"
#include "kernel/kmem.hh"
#include "sva/vm.hh"

using namespace vg;

namespace
{

sim::VgConfig
cfgFor(bool fast)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.kmemFastPath = fast;
    return cfg;
}

// --------------------------------------------------------------------
// Hand-mapped rig: page tables built directly in frames 0..3 (no SVA
// install, every frame stays Free so stores are permitted), used for
// the targeted unit tests.
// --------------------------------------------------------------------
struct HandRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    kern::Kmem kmem;

    explicit HandRig(bool fast)
        : ctx(cfgFor(fast)), mem(64), mmu(mem, ctx), iommu(mem, ctx),
          tpm({'k', 't'}), vm(ctx, mem, mmu, iommu, tpm),
          kmem(ctx, mem, mmu, vm)
    {}

    /** Install a user leaf for @p va (tables in frames 0..3). */
    void
    map(hw::Vaddr va, hw::Frame target, bool writable)
    {
        using namespace hw;
        mem.write64(0 * pageSize + ptIndex(va, PtLevel::L4) * 8,
                    pte::make(1, true, true, false));
        mem.write64(1 * pageSize + ptIndex(va, PtLevel::L3) * 8,
                    pte::make(2, true, true, false));
        mem.write64(2 * pageSize + ptIndex(va, PtLevel::L2) * 8,
                    pte::make(3, true, true, false));
        mem.write64(3 * pageSize + ptIndex(va, PtLevel::L1) * 8,
                    pte::make(target, writable, true, false));
    }
};

/** Assert two rigs are in the same observable state. */
void
expectIdentical(HandRig &fast, HandRig &ref, const char *where)
{
    EXPECT_EQ(fast.ctx.clock().now(), ref.ctx.clock().now()) << where;
    EXPECT_EQ(fast.ctx.stats().all(), ref.ctx.stats().all()) << where;
    EXPECT_EQ(fast.kmem.deflections(), ref.kmem.deflections()) << where;
    std::vector<uint8_t> a(hw::pageSize), b(hw::pageSize);
    for (uint64_t pa = 0; pa < fast.mem.sizeBytes();
         pa += hw::pageSize) {
        fast.mem.readBytes(pa, a.data(), a.size());
        ref.mem.readBytes(pa, b.data(), b.size());
        ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
            << where << ": frame " << (pa >> hw::pageShift);
    }
}

constexpr hw::Vaddr kUserVa = 0x400000;
// 64 pages above kUserVa: same direct-mapped TLB set, different page.
constexpr hw::Vaddr kCollideVa =
    kUserVa + hw::Mmu::tlbEntries * hw::pageSize;

} // namespace

// --------------------------------------------------------------------
// Targeted unit tests.
// --------------------------------------------------------------------

/** The cache must be dropped by invlpg exactly as the TLB is: reads
 *  keep returning the stale mapping until the invalidate, then see the
 *  new one. */
TEST(KmemFast, CacheFollowsInvalidatePage)
{
    HandRig r(true);
    r.map(kUserVa, 8, true);
    r.mmu.setRoot(0);
    r.mem.write64(8 * hw::pageSize, 0x1111);
    r.mem.write64(9 * hw::pageSize, 0x2222);

    uint64_t v = 0;
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x1111u);

    // Remap behind the TLB's back: both TLB and cache stay stale —
    // that *is* the architectural behaviour until an invlpg.
    r.map(kUserVa, 9, true);
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x1111u);

    r.mmu.invalidatePage(kUserVa);
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x2222u);
}

TEST(KmemFast, CacheFollowsFlushTlb)
{
    HandRig r(true);
    r.map(kUserVa, 8, true);
    r.mmu.setRoot(0);
    r.mem.write64(8 * hw::pageSize, 0x1111);
    r.mem.write64(9 * hw::pageSize, 0x2222);

    uint64_t v = 0;
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    r.map(kUserVa, 9, true);
    r.mmu.flushTlb();
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x2222u);
}

TEST(KmemFast, CacheFollowsSetRoot)
{
    HandRig r(true);
    r.map(kUserVa, 8, true);
    r.mmu.setRoot(0);
    r.mem.write64(8 * hw::pageSize, 0x1111);
    r.mem.write64(9 * hw::pageSize, 0x2222);

    uint64_t v = 0;
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    r.map(kUserVa, 9, true);
    r.mmu.setRoot(0); // CR3 reload flushes
    ASSERT_TRUE(r.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x2222u);
}

/** A walk that evicts a live TLB entry (set collision) must also kill
 *  the cache, or a later cached hit would charge tlbHit where the
 *  reference path misses. Checked differentially via cycles + stats. */
TEST(KmemFast, CacheFollowsTlbEviction)
{
    HandRig fast(true), ref(false);
    for (HandRig *r : {&fast, &ref}) {
        r->map(kUserVa, 8, true);
        r->map(kCollideVa, 9, true);
        r->mmu.setRoot(0);
    }
    ASSERT_EQ(hw::Mmu::tlbIndex(kUserVa), hw::Mmu::tlbIndex(kCollideVa));

    uint64_t v = 0;
    for (HandRig *r : {&fast, &ref}) {
        ASSERT_TRUE(r->kmem.kread(kUserVa, 8, v));    // miss + walk
        ASSERT_TRUE(r->kmem.kread(kCollideVa, 8, v)); // evicts kUserVa
        ASSERT_TRUE(r->kmem.kread(kUserVa, 8, v));    // must miss again
    }
    EXPECT_EQ(fast.ctx.stats().get("mmu.tlb_misses"), 3u);
    expectIdentical(fast, ref, "tlb eviction");
}

/** Page-straddling copy: contents and charges match the reference. */
TEST(KmemFast, CopyStraddlesPages)
{
    HandRig fast(true), ref(false);
    for (HandRig *r : {&fast, &ref}) {
        for (int i = 0; i < 8; i++)
            r->map(kUserVa + uint64_t(i) * hw::pageSize,
                   hw::Frame(8 + i), true);
        r->mmu.setRoot(0);
        for (uint64_t i = 0; i < 2 * hw::pageSize; i++)
            r->mem.write8(8 * hw::pageSize + i, uint8_t(i * 7 + 3));
    }

    bool okF = fast.kmem.copy(kUserVa + 4 * hw::pageSize + 50,
                              kUserVa + 100, 6000);
    bool okR = ref.kmem.copy(kUserVa + 4 * hw::pageSize + 50,
                             kUserVa + 100, 6000);
    EXPECT_TRUE(okF);
    EXPECT_EQ(okF, okR);
    for (uint64_t i = 0; i < 6000; i++)
        ASSERT_EQ(fast.mem.read8(12 * hw::pageSize + 50 + i),
                  uint8_t((100 + i) * 7 + 3))
            << "byte " << i;
    expectIdentical(fast, ref, "straddling copy");
}

/** Physically overlapping forward copy: the reference loop propagates
 *  freshly written bytes; the fast path must reproduce that. */
TEST(KmemFast, CopyOverlapPropagates)
{
    HandRig fast(true), ref(false);
    hw::Vaddr base = hw::kernelBase + 20 * hw::pageSize;
    for (HandRig *r : {&fast, &ref}) {
        for (uint64_t i = 0; i < 128; i++)
            r->mem.write8(20 * hw::pageSize + i, uint8_t(i + 1));
        ASSERT_TRUE(r->kmem.copy(base + 1, base, 64));
    }
    // Forward byte copy with dst = src+1 smears byte 0 over the range.
    for (uint64_t i = 0; i <= 64; i++)
        ASSERT_EQ(fast.mem.read8(20 * hw::pageSize + i), 1u)
            << "byte " << i;
    expectIdentical(fast, ref, "overlapping copy");
}

/** src/dst in the same TLB set: the reference loop walk-thrashes on
 *  every byte; the fast path must charge identically. */
TEST(KmemFast, CopyTlbSetThrash)
{
    HandRig fast(true), ref(false);
    for (HandRig *r : {&fast, &ref}) {
        r->map(kUserVa, 8, true);
        r->map(kCollideVa, 9, true);
        r->mmu.setRoot(0);
        for (uint64_t i = 0; i < 256; i++)
            r->mem.write8(8 * hw::pageSize + i, uint8_t(i ^ 0x5a));
        ASSERT_TRUE(r->kmem.copy(kCollideVa, kUserVa, 256));
    }
    for (uint64_t i = 0; i < 256; i++)
        ASSERT_EQ(fast.mem.read8(9 * hw::pageSize + i),
                  uint8_t(i ^ 0x5a));
    // Reference walk-thrash: every byte misses on both pages.
    EXPECT_GE(fast.ctx.stats().get("mmu.tlb_misses"), 2 * 256u);
    expectIdentical(fast, ref, "tlb-set thrash copy");
}

/** A denied store partway through a copy leaves the same prefix
 *  written and the same blocked-store count as the reference. */
TEST(KmemFast, CopyBlockedStoreAtChunkBoundary)
{
    HandRig fast(true), ref(false);
    for (HandRig *r : {&fast, &ref}) {
        for (int i = 0; i < 4; i++)
            r->map(kUserVa + uint64_t(i) * hw::pageSize,
                   hw::Frame(8 + i), true);
        r->mmu.setRoot(0);
        // Frame 9 (second dst page) becomes VM-owned: stores refused.
        r->vm.frames()[9].type = sva::FrameType::Ghost;
        for (uint64_t i = 0; i < 2 * hw::pageSize; i++)
            r->mem.write8(10 * hw::pageSize + i, uint8_t(i + 9));
    }

    // dst pages 8,9; src pages 10,11. Fails entering frame 9.
    bool okF = fast.kmem.copy(kUserVa, kUserVa + 2 * hw::pageSize,
                              2 * hw::pageSize);
    bool okR = ref.kmem.copy(kUserVa, kUserVa + 2 * hw::pageSize,
                             2 * hw::pageSize);
    EXPECT_FALSE(okF);
    EXPECT_EQ(okF, okR);
    EXPECT_EQ(fast.ctx.stats().get("kmem.blocked_stores"), 1u);
    expectIdentical(fast, ref, "blocked store");
}

/** A TLB-resident entry that lacks the requested permission re-walks
 *  and is counted as a perm rewalk, not a (phantom) TLB miss. */
TEST(KmemFast, PermissionRewalkCountedSeparately)
{
    HandRig r(true);
    r.map(kUserVa, 8, false); // read-only
    r.mmu.setRoot(0);

    auto rd = r.mmu.translate(kUserVa, hw::Access::Read,
                              hw::Privilege::Kernel);
    ASSERT_TRUE(rd.ok);
    EXPECT_EQ(r.ctx.stats().get("mmu.tlb_misses"), 1u);

    // Upgrade the PTE behind the TLB's back, then write: the stale
    // entry forces a re-walk that picks up the new permission.
    r.map(kUserVa, 8, true);
    auto wr = r.mmu.translate(kUserVa, hw::Access::Write,
                              hw::Privilege::Kernel);
    EXPECT_TRUE(wr.ok);
    EXPECT_EQ(r.ctx.stats().get("mmu.tlb_misses"), 1u);
    EXPECT_EQ(r.ctx.stats().get("mmu.tlb_perm_rewalks"), 1u);
    EXPECT_EQ(r.ctx.stats().get("mmu.tlb_hits"), 0u);
}

/** getZeroed counts hits and misses like get() (and still counts its
 *  zero-fills). */
TEST(KmemFast, BcacheGetZeroedStatSymmetry)
{
    sim::SimContext ctx;
    hw::PhysMem mem(16);
    hw::Iommu iommu(mem, ctx);
    hw::Disk disk(256, iommu, ctx);
    kern::BufferCache bc(disk, ctx, 8);

    ASSERT_NE(bc.getZeroed(5), nullptr); // miss + zero fill
    EXPECT_EQ(bc.misses(), 1u);
    EXPECT_EQ(ctx.stats().get("bcache.misses"), 1u);
    EXPECT_EQ(ctx.stats().get("bcache.zero_fills"), 1u);
    EXPECT_EQ(bc.hits(), 0u);

    ASSERT_NE(bc.getZeroed(5), nullptr); // hit
    EXPECT_EQ(bc.hits(), 1u);
    EXPECT_EQ(ctx.stats().get("bcache.hits"), 1u);
    EXPECT_EQ(bc.misses(), 1u);
    EXPECT_EQ(ctx.stats().get("bcache.zero_fills"), 1u);
}

// --------------------------------------------------------------------
// Differential sweep: a full SVA-booted machine, random kernel memory
// traffic over every address class interleaved with TLB-shootdown
// events, fast vs reference in lockstep.
// --------------------------------------------------------------------

namespace
{

struct SweepRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    kern::Kmem kmem;
    std::deque<hw::Frame> freeFrames;

    explicit SweepRig(bool fast)
        : ctx(cfgFor(fast)), mem(512), mmu(mem, ctx), iommu(mem, ctx),
          tpm({'k', 'f'}), vm(ctx, mem, mmu, iommu, tpm),
          kmem(ctx, mem, mmu, vm)
    {
        vm.install(384);
        vm.boot();
        for (hw::Frame f = 64; f < 448; f++)
            freeFrames.push_back(f);
        vm.setFrameProvider([this]() -> std::optional<hw::Frame> {
            if (freeFrames.empty())
                return std::nullopt;
            hw::Frame f = freeFrames.front();
            freeFrames.pop_front();
            return f;
        });
        vm.setFrameReceiver(
            [this](hw::Frame f) { freeFrames.push_back(f); });

        sva::SvaError err;
        EXPECT_TRUE(vm.declarePtPage(0, 4, &err));
        EXPECT_TRUE(vm.allocGhostMemory(1, 0, hw::ghostBase, 4, &err));
        // Intermediate tables for the user windows (kUserVa and
        // kCollideVa share one 2 MB region, hence one L1 table).
        EXPECT_TRUE(vm.declarePtPage(60, 3, &err)) << err.message;
        EXPECT_TRUE(vm.installTable(0, 4, kUserVa, 60, &err));
        EXPECT_TRUE(vm.declarePtPage(61, 2, &err));
        EXPECT_TRUE(vm.installTable(60, 3, kUserVa, 61, &err));
        EXPECT_TRUE(vm.declarePtPage(62, 1, &err));
        EXPECT_TRUE(vm.installTable(61, 2, kUserVa, 62, &err));
        // Frames 448.. are reserved as map targets (never given to
        // the provider, so map/unmap storms can't reuse them).
        for (int i = 0; i < 8; i++)
            EXPECT_TRUE(vm.mapPage(0,
                                   kUserVa + uint64_t(i) * hw::pageSize,
                                   hw::Frame(448 + i), i % 3 != 2, true,
                                   true, &err));
        for (int i = 0; i < 2; i++)
            EXPECT_TRUE(
                vm.mapPage(0, kCollideVa + uint64_t(i) * hw::pageSize,
                           hw::Frame(456 + i), true, true, true, &err));
        EXPECT_TRUE(vm.loadRoot(0, &err));
    }
};

hw::Vaddr
randomVa(crypto::CtrDrbg &rng)
{
    switch (rng.nextBounded(8)) {
      case 0:
      case 1:
      case 2: // mapped user window (hot)
        return kUserVa + rng.nextBounded(8 * hw::pageSize);
      case 3: // TLB-set-colliding user window
        return kCollideVa + rng.nextBounded(2 * hw::pageSize);
      case 4: // arbitrary (mostly unmapped) user
        return rng.nextBounded(1ull << 40);
      case 5: // ghost partition (deflected by masking)
        return hw::ghostBase + rng.nextBounded(4 * hw::pageSize);
      case 6: // SVA internal (rewritten to 0, faults)
        return hw::svaBase + rng.nextBounded(1ull << 20);
      default: // kernel half (direct map)
        return hw::kernelBase + rng.nextBounded(512 * hw::pageSize);
    }
}

} // namespace

class KmemFastSweep : public ::testing::TestWithParam<int>
{};

TEST_P(KmemFastSweep, MatchesReferencePath)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'k', 'm'});
    SweepRig fast(true);
    SweepRig ref(false);

    std::vector<uint8_t> bufF(3 * hw::pageSize);
    std::vector<uint8_t> bufR(3 * hw::pageSize);
    sva::SvaError errF, errR;

    for (int op = 0; op < 1500; op++) {
        switch (rng.nextBounded(12)) {
          case 0: { // native kernel load
            hw::Vaddr va = randomVa(rng);
            unsigned bytes = 1u << rng.nextBounded(4);
            uint64_t vF = 0, vR = 0;
            bool okF = fast.kmem.kread(va, bytes, vF);
            bool okR = ref.kmem.kread(va, bytes, vR);
            ASSERT_EQ(okF, okR) << "op " << op;
            ASSERT_EQ(vF, vR) << "op " << op;
            break;
          }
          case 1: { // native kernel store
            hw::Vaddr va = randomVa(rng);
            unsigned bytes = 1u << rng.nextBounded(4);
            uint64_t val = rng.next64();
            ASSERT_EQ(fast.kmem.kwrite(va, bytes, val),
                      ref.kmem.kwrite(va, bytes, val))
                << "op " << op;
            break;
          }
          case 2: { // module-port load
            hw::Vaddr va = randomVa(rng);
            uint64_t vF = 0, vR = 0;
            bool okF = fast.kmem.read(va, 8, vF);
            bool okR = ref.kmem.read(va, 8, vR);
            ASSERT_EQ(okF, okR) << "op " << op;
            ASSERT_EQ(vF, vR) << "op " << op;
            break;
          }
          case 3: { // module-port store
            hw::Vaddr va = randomVa(rng);
            uint64_t val = rng.next64();
            ASSERT_EQ(fast.kmem.write(va, 4, val),
                      ref.kmem.write(va, 4, val))
                << "op " << op;
            break;
          }
          case 4:
          case 5: { // module-port bulk copy (the chunked hot path)
            hw::Vaddr src = randomVa(rng);
            hw::Vaddr dst = randomVa(rng);
            uint64_t len = rng.nextBounded(3 * hw::pageSize) + 1;
            ASSERT_EQ(fast.kmem.copy(dst, src, len),
                      ref.kmem.copy(dst, src, len))
                << "op " << op;
            break;
          }
          case 6: { // copyin
            hw::Vaddr va = randomVa(rng);
            uint64_t len = rng.nextBounded(bufF.size()) + 1;
            std::memset(bufF.data(), 0xee, len);
            std::memset(bufR.data(), 0xee, len);
            bool okF = fast.kmem.copyIn(va, bufF.data(), len);
            bool okR = ref.kmem.copyIn(va, bufR.data(), len);
            ASSERT_EQ(okF, okR) << "op " << op;
            ASSERT_EQ(std::memcmp(bufF.data(), bufR.data(), len), 0)
                << "op " << op;
            break;
          }
          case 7: { // copyout
            hw::Vaddr va = randomVa(rng);
            uint64_t len = rng.nextBounded(bufF.size()) + 1;
            for (uint64_t i = 0; i < len; i++)
                bufF[i] = bufR[i] = uint8_t(rng.nextBounded(256));
            ASSERT_EQ(fast.kmem.copyOut(va, bufF.data(), len),
                      ref.kmem.copyOut(va, bufR.data(), len))
                << "op " << op;
            break;
          }
          case 8: { // invlpg
            hw::Vaddr va = randomVa(rng);
            fast.mmu.invalidatePage(va);
            ref.mmu.invalidatePage(va);
            break;
          }
          case 9: // TLB flush or CR3 reload
            if (rng.nextBounded(2) == 0) {
                fast.mmu.flushTlb();
                ref.mmu.flushTlb();
            } else {
                ASSERT_EQ(fast.vm.loadRoot(0, &errF),
                          ref.vm.loadRoot(0, &errR))
                    << "op " << op;
            }
            break;
          case 10: { // remap / protect a hot user page
            hw::Vaddr va =
                hw::pageOf(kUserVa + rng.nextBounded(8 * hw::pageSize));
            bool writable = rng.nextBounded(2) == 0;
            ASSERT_EQ(fast.vm.protectPage(0, va, writable, true, &errF),
                      ref.vm.protectPage(0, va, writable, true, &errR))
                << "op " << op;
            break;
          }
          default: { // unmap + remap a hot user page
            int i = int(rng.nextBounded(8));
            hw::Vaddr va = kUserVa + uint64_t(i) * hw::pageSize;
            ASSERT_EQ(fast.vm.unmapPage(0, va, &errF),
                      ref.vm.unmapPage(0, va, &errR))
                << "op " << op;
            ASSERT_EQ(fast.vm.mapPage(0, va, hw::Frame(448 + i), true,
                                      true, true, &errF),
                      ref.vm.mapPage(0, va, hw::Frame(448 + i), true,
                                     true, true, &errR))
                << "op " << op;
            break;
          }
        }

        // Lockstep: simulated time must agree after *every* op.
        ASSERT_EQ(fast.ctx.clock().now(), ref.ctx.clock().now())
            << "op " << op;
    }

    // Full-state agreement: stats, deflections, every byte of RAM.
    EXPECT_EQ(fast.ctx.stats().all(), ref.ctx.stats().all());
    EXPECT_EQ(fast.kmem.deflections(), ref.kmem.deflections());
    std::vector<uint8_t> a(hw::pageSize), b(hw::pageSize);
    for (uint64_t pa = 0; pa < fast.mem.sizeBytes();
         pa += hw::pageSize) {
        fast.mem.readBytes(pa, a.data(), a.size());
        ref.mem.readBytes(pa, b.data(), b.size());
        ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
            << "frame " << (pa >> hw::pageShift);
    }
    // The fast path must actually have been exercised.
    EXPECT_GT(fast.ctx.stats().get("mmu.tlb_hits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmemFastSweep,
                         ::testing::Values(1, 2, 3, 4));
