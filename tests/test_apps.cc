/**
 * @file
 * Application-suite integration tests: ghost heap, secure file I/O,
 * the OpenSSH trio end-to-end, thttpd + ApacheBench, Postmark.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/postmark.hh"
#include "apps/ssh_common.hh"
#include "apps/thttpd.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::apps;

namespace
{

SystemConfig
appConfig(sim::VgConfig vg = sim::VgConfig::full())
{
    SystemConfig cfg;
    cfg.vg = vg;
    cfg.memFrames = 8192;  // 32 MB
    cfg.diskBlocks = 8192; // 32 MB
    cfg.rsaBits = 384;
    return cfg;
}

crypto::AesKey
testAppKey()
{
    crypto::AesKey key{};
    for (int i = 0; i < 16; i++)
        key[size_t(i)] = uint8_t(0x20 + i);
    return key;
}

/** Write a deterministic file straight into the filesystem. */
void
plantFile(Kernel &kernel, const std::string &path, uint64_t size)
{
    Ino ino = 0;
    ASSERT_EQ(kernel.fs().create(path, ino), FsStatus::Ok);
    std::vector<uint8_t> data(size);
    for (uint64_t i = 0; i < size; i++)
        data[i] = uint8_t(i * 37 + 11);
    ASSERT_EQ(kernel.fs().write(ino, 0, data.data(), size),
              int64_t(size));
}

std::vector<uint8_t>
expectedFile(uint64_t size)
{
    std::vector<uint8_t> data(size);
    for (uint64_t i = 0; i < size; i++)
        data[i] = uint8_t(i * 37 + 11);
    return data;
}

} // namespace

// --------------------------------------------------------------------
// Ghost heap
// --------------------------------------------------------------------

TEST(GhostHeap, AllocFreeReuse)
{
    System sys(appConfig());
    sys.boot();
    sys.runProcess("heap", [](UserApi &api) {
        ghost::GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(100);
        hw::Vaddr b = heap.gmalloc(200);
        EXPECT_NE(a, 0u);
        EXPECT_NE(b, 0u);
        EXPECT_NE(a, b);
        EXPECT_TRUE(hw::isGhostAddr(a));
        EXPECT_EQ(heap.blockSize(a), 112u); // 16-byte aligned
        EXPECT_EQ(heap.bytesInUse(), 112u + 208u);

        heap.gfree(a);
        hw::Vaddr c = heap.gmalloc(50);
        EXPECT_EQ(c, a); // first-fit reuse
        heap.gfree(b);
        heap.gfree(c);
        EXPECT_EQ(heap.bytesInUse(), 0u);
        return 0;
    });
}

TEST(GhostHeap, DataRoundtripAndRealloc)
{
    System sys(appConfig());
    sys.boot();
    sys.runProcess("heap2", [](UserApi &api) {
        ghost::GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(64);
        std::vector<uint8_t> data(64);
        for (int i = 0; i < 64; i++)
            data[size_t(i)] = uint8_t(i);
        EXPECT_TRUE(heap.write(a, data.data(), data.size()));

        hw::Vaddr bigger = heap.grealloc(a, 4096);
        EXPECT_NE(bigger, 0u);
        std::vector<uint8_t> back(64);
        EXPECT_TRUE(heap.read(bigger, back.data(), back.size()));
        EXPECT_EQ(back, data);
        return 0;
    });
}

TEST(GhostHeap, GrowsArenaAcrossPages)
{
    System sys(appConfig());
    sys.boot();
    sys.runProcess("heap3", [](UserApi &api) {
        ghost::GhostHeap heap(api);
        std::vector<hw::Vaddr> blocks;
        for (int i = 0; i < 40; i++) {
            hw::Vaddr va = heap.gmalloc(8192);
            EXPECT_NE(va, 0u);
            blocks.push_back(va);
        }
        EXPECT_GE(heap.arenaBytes(), 40u * 8192u);
        for (hw::Vaddr va : blocks)
            heap.gfree(va);
        return 0;
    });
}

// --------------------------------------------------------------------
// Secure file I/O through the hostile OS
// --------------------------------------------------------------------

TEST(SecureIo, RoundtripAndTamperDetection)
{
    System sys(appConfig());
    sys.boot();
    crypto::AesKey key = testAppKey();
    sva::AppBinary bin = sys.vm().packageApp("app", "code", key);

    int code = sys.runProcess("sec", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> secret = {'k', 'e', 'y', 's'};
            if (!rt.writeSecureFile("/vault", secret))
                return 1;
            std::vector<uint8_t> back;
            if (!rt.readSecureFile("/vault", back))
                return 2;
            if (back != secret)
                return 3;
            return 0;
        });
    });
    EXPECT_EQ(code, 0);

    // The hostile OS flips a ciphertext bit on disk.
    Ino ino = 0;
    ASSERT_EQ(sys.kernel().fs().lookup("/vault", ino), FsStatus::Ok);
    uint8_t byte = 0;
    sys.kernel().fs().read(ino, 40, &byte, 1);
    byte ^= 0x1;
    sys.kernel().fs().write(ino, 40, &byte, 1);

    int code2 = sys.runProcess("sec2", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> back;
            // Corruption must be detected, not silently returned.
            return rt.readSecureFile("/vault", back) ? 1 : 0;
        });
    });
    EXPECT_EQ(code2, 0);
}

TEST(SecureIo, OsSeesOnlyCiphertext)
{
    System sys(appConfig());
    sys.boot();
    crypto::AesKey key = testAppKey();
    sva::AppBinary bin = sys.vm().packageApp("app", "code", key);

    std::string secret = "private authentication key material";
    sys.runProcess("writer", [&](UserApi &api) {
        return api.execve(&bin, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeSecureFile(
                "/id", std::vector<uint8_t>(secret.begin(),
                                            secret.end()));
            return 0;
        });
    });

    Ino ino = 0;
    ASSERT_EQ(sys.kernel().fs().lookup("/id", ino), FsStatus::Ok);
    FileStat st;
    sys.kernel().fs().stat(ino, st);
    std::vector<uint8_t> raw(st.size);
    sys.kernel().fs().read(ino, 0, raw.data(), st.size);
    std::string raw_str(raw.begin(), raw.end());
    EXPECT_EQ(raw_str.find(secret), std::string::npos);
}

// --------------------------------------------------------------------
// OpenSSH suite end-to-end
// --------------------------------------------------------------------

namespace
{

/** keygen, then serve one connection and fetch a file. */
SshResult
sshRoundtrip(System &sys, const sva::AppBinary &bin, uint64_t file_size,
             bool ghosting)
{
    plantFile(sys.kernel(), "/payload", file_size);
    SshResult result;

    sys.runProcess("init", [&](UserApi &api) {
        // ssh-keygen writes the (encrypted) auth keys.
        uint64_t kg = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);
        if (status != 0)
            return 1;

        uint64_t srv = api.fork([&](UserApi &capi) {
            SshdConfig cfg;
            cfg.maxConnections = 1;
            return sshd(capi, cfg);
        });
        // Let the server reach accept().
        for (int i = 0; i < 4; i++)
            api.yield();

        uint64_t cli = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [&](UserApi &napi) {
                result = sshFetch(napi, "/payload", ghosting,
                                  /*keep_data=*/true);
                return result.ok ? 0 : 1;
            });
        });
        api.waitpid(cli, status);
        api.waitpid(srv, status);
        return 0;
    });
    return result;
}

} // namespace

TEST(Ssh, KeygenProtectsPrivateKeyOnDisk)
{
    System sys(appConfig());
    sys.boot();
    crypto::AesKey key = testAppKey();
    sva::AppBinary bin = sys.vm().packageApp("openssh", "ssh-code", key);

    int code = sys.runProcess("kg", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            return sshKeygen(napi);
        });
    });
    ASSERT_EQ(code, 0);

    // The public key is plaintext and parses; the private key file
    // does not contain the serialized private key in the clear.
    Ino pub = 0, priv = 0;
    ASSERT_EQ(sys.kernel().fs().lookup(authPubPath, pub), FsStatus::Ok);
    ASSERT_EQ(sys.kernel().fs().lookup(authKeyPath, priv),
              FsStatus::Ok);

    FileStat st;
    sys.kernel().fs().stat(pub, st);
    std::vector<uint8_t> pub_raw(st.size);
    sys.kernel().fs().read(pub, 0, pub_raw.data(), st.size);
    bool ok = false;
    crypto::RsaPublicKey parsed =
        crypto::RsaPublicKey::deserialize(pub_raw, ok);
    EXPECT_TRUE(ok);
    EXPECT_GT(parsed.n.bitLength(), 200u);

    FileStat pst;
    sys.kernel().fs().stat(priv, pst);
    std::vector<uint8_t> priv_raw(pst.size);
    sys.kernel().fs().read(priv, 0, priv_raw.data(), pst.size);
    // The modulus bytes appear in the public file; they must not be
    // findable in the encrypted private file.
    std::string priv_str(priv_raw.begin(), priv_raw.end());
    std::string needle(pub_raw.begin() + 2, pub_raw.begin() + 18);
    EXPECT_EQ(priv_str.find(needle), std::string::npos);
}

TEST(Ssh, TransferNonGhosting)
{
    System sys(appConfig());
    sys.boot();
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", testAppKey());
    SshResult r = sshRoundtrip(sys, bin, 64 * 1024, false);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.bytes, 64u * 1024u);
    EXPECT_EQ(r.data, expectedFile(64 * 1024));
}

TEST(Ssh, TransferGhostingClient)
{
    System sys(appConfig());
    sys.boot();
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", testAppKey());
    SshResult r = sshRoundtrip(sys, bin, 64 * 1024, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, expectedFile(64 * 1024));
    // Ghost pages were actually used.
    EXPECT_GT(sys.ctx().stats().get("sva.ghost_pages_allocated"), 0u);
}

TEST(Ssh, AgentSignsChallenges)
{
    System sys(appConfig());
    sys.boot();
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", testAppKey());

    sys.runProcess("init", [&](UserApi &api) {
        uint64_t kg = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);
        EXPECT_EQ(status, 0);

        uint64_t agent = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                AgentConfig cfg;
                cfg.maxRequests = 1;
                return sshAgent(napi, cfg);
            });
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        // Client: ask the agent to sign a challenge, verify with the
        // installed public key.
        int fd = api.connect(agentPort);
        EXPECT_GE(fd, 0);
        sendStr(api, fd, "PING");
        std::string pong;
        EXPECT_TRUE(recvStr(api, fd, pong));
        EXPECT_EQ(pong, "PONG");

        std::string challenge = "SIGN abcdef0123456789";
        sendStr(api, fd, challenge);
        std::vector<uint8_t> signature;
        EXPECT_TRUE(recvMsg(api, fd, signature));

        Ino ino = 0;
        api.kernel().fs().lookup(authorizedPath, ino);
        FileStat st;
        api.kernel().fs().stat(ino, st);
        std::vector<uint8_t> pub_raw(st.size);
        api.kernel().fs().read(ino, 0, pub_raw.data(), st.size);
        bool ok = false;
        auto pub = crypto::RsaPublicKey::deserialize(pub_raw, ok);
        EXPECT_TRUE(ok);
        std::vector<uint8_t> msg(challenge.begin() + 5,
                                 challenge.end());
        EXPECT_TRUE(crypto::rsaVerify(pub, msg, signature));

        sendStr(api, fd, "QUIT");
        api.close(fd);
        api.waitpid(agent, status);
        EXPECT_EQ(status, 0);
        return 0;
    });
}

// --------------------------------------------------------------------
// thttpd + ApacheBench
// --------------------------------------------------------------------

TEST(Thttpd, ServesFilesToApacheBench)
{
    System sys(appConfig());
    sys.boot();
    plantFile(sys.kernel(), "/index.html", 4096);

    AbResult ab;
    sys.runProcess("init", [&](UserApi &api) {
        uint64_t srv = api.fork([](UserApi &capi) {
            ThttpdConfig cfg;
            cfg.maxRequests = 10;
            return thttpd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        uint64_t cli = api.fork([&](UserApi &capi) {
            ab = apacheBench(capi, "/index.html", 10);
            return 0;
        });
        int status;
        api.waitpid(cli, status);
        api.waitpid(srv, status);
        return 0;
    });

    EXPECT_EQ(ab.requests, 10u);
    EXPECT_EQ(ab.failures, 0u);
    EXPECT_EQ(ab.bytes, 10u * 4096u);
    EXPECT_GT(ab.cycles, 0u);
}

TEST(Thttpd, Returns404ForMissingFiles)
{
    System sys(appConfig());
    sys.boot();

    AbResult ab;
    sys.runProcess("init", [&](UserApi &api) {
        uint64_t srv = api.fork([](UserApi &capi) {
            ThttpdConfig cfg;
            cfg.maxRequests = 1;
            return thttpd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();
        uint64_t cli = api.fork([&](UserApi &capi) {
            ab = apacheBench(capi, "/nope", 1);
            return 0;
        });
        int status;
        api.waitpid(cli, status);
        api.waitpid(srv, status);
        return 0;
    });
    EXPECT_EQ(ab.requests, 1u);
    EXPECT_EQ(ab.bytes, 0u);
}

// --------------------------------------------------------------------
// Postmark
// --------------------------------------------------------------------

TEST(Postmark, SmallRunCompletes)
{
    System sys(appConfig());
    sys.boot();

    PostmarkResult pm;
    sys.runProcess("postmark", [&](UserApi &api) {
        PostmarkConfig cfg;
        cfg.baseFiles = 20;
        cfg.transactions = 300;
        pm = postmark(api, cfg);
        return 0;
    });

    EXPECT_EQ(pm.transactions, 300u);
    EXPECT_GE(pm.filesCreated, 20u);
    EXPECT_GT(pm.bytesRead, 0u);
    EXPECT_GT(pm.bytesWritten, 0u);
    EXPECT_GT(pm.cycles, 0u);
    // Everything got deleted at the end.
    Ino dir = 0;
    sys.kernel().fs().lookup("/pm", dir);
    std::vector<std::string> names;
    sys.kernel().fs().readdir(dir, names);
    EXPECT_TRUE(names.empty());
}

TEST(Postmark, VgSlowerThanNative)
{
    auto run = [](sim::VgConfig cfg) {
        System sys(appConfig(cfg));
        sys.boot();
        PostmarkResult pm;
        sys.runProcess("postmark", [&](UserApi &api) {
            PostmarkConfig c;
            c.baseFiles = 20;
            c.transactions = 200;
            pm = postmark(api, c);
            return 0;
        });
        return pm.cycles;
    };
    sim::Cycles native = run(sim::VgConfig::native());
    sim::Cycles vg = run(sim::VgConfig::full());
    EXPECT_GT(vg, native * 2);
}
