/**
 * @file
 * GhostHeap allocator internals: coalescing, alignment, fragmentation
 * behaviour, zero-size and double-free handling.
 */

#include <gtest/gtest.h>

#include "ghost/gmalloc.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::ghost;

namespace
{

SystemConfig
cfg()
{
    SystemConfig c;
    c.memFrames = 4096;
    c.diskBlocks = 2048;
    c.rsaBits = 384;
    return c;
}

} // namespace

TEST(GhostHeapUnit, ZeroSizeAllocationsAreDistinct)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [](UserApi &api) {
        GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(0);
        hw::Vaddr b = heap.gmalloc(0);
        EXPECT_NE(a, 0u);
        EXPECT_NE(b, 0u);
        EXPECT_NE(a, b);
        return 0;
    });
}

TEST(GhostHeapUnit, AdjacentFreesCoalesce)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [](UserApi &api) {
        GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(1000);
        hw::Vaddr b = heap.gmalloc(1000);
        hw::Vaddr c = heap.gmalloc(1000);
        EXPECT_EQ(b, a + 1008); // 16-aligned blocks packed tight
        heap.gfree(a);
        heap.gfree(b);
        // Coalesced hole of 2016 bytes: a 1500-byte block fits at a.
        hw::Vaddr d = heap.gmalloc(1500);
        EXPECT_EQ(d, a);
        heap.gfree(c);
        heap.gfree(d);
        EXPECT_EQ(heap.bytesInUse(), 0u);
        return 0;
    });
}

TEST(GhostHeapUnit, DoubleFreeAndForeignFreeIgnored)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [](UserApi &api) {
        GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(64);
        heap.gfree(a);
        uint64_t in_use = heap.bytesInUse();
        heap.gfree(a);                      // double free
        heap.gfree(a + 8);                  // interior pointer
        heap.gfree(hw::ghostBase + (1ull << 30)); // never allocated
        EXPECT_EQ(heap.bytesInUse(), in_use);
        return 0;
    });
}

TEST(GhostHeapUnit, CallocZeroesPreviouslyUsedMemory)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [](UserApi &api) {
        GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(256);
        std::vector<uint8_t> junk(256, 0xff);
        heap.write(a, junk.data(), junk.size());
        heap.gfree(a);

        hw::Vaddr b = heap.gcalloc(256);
        EXPECT_EQ(b, a); // reuse
        std::vector<uint8_t> back(256, 1);
        heap.read(b, back.data(), back.size());
        for (uint8_t v : back)
            EXPECT_EQ(v, 0);
        return 0;
    });
}

TEST(GhostHeapUnit, ReallocShrinkKeepsBlock)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [](UserApi &api) {
        GhostHeap heap(api);
        hw::Vaddr a = heap.gmalloc(512);
        EXPECT_EQ(heap.grealloc(a, 100), a); // shrink in place
        // grealloc(nullptr) behaves like malloc.
        hw::Vaddr b = heap.grealloc(0, 64);
        EXPECT_NE(b, 0u);
        EXPECT_NE(b, a);
        // grealloc of a non-allocation fails cleanly.
        EXPECT_EQ(heap.grealloc(a + 8, 1024), 0u);
        return 0;
    });
}

TEST(GhostHeapUnit, ManySmallAllocationsStressFreelist)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("h", [&](UserApi &api) {
        GhostHeap heap(api);
        crypto::CtrDrbg rng({'g', 'h'});
        std::vector<hw::Vaddr> blocks;
        for (int round = 0; round < 600; round++) {
            if (blocks.empty() || rng.nextBounded(3) > 0) {
                hw::Vaddr va =
                    heap.gmalloc(rng.nextBounded(500) + 1);
                EXPECT_NE(va, 0u);
                blocks.push_back(va);
            } else {
                size_t idx = rng.nextBounded(blocks.size());
                heap.gfree(blocks[idx]);
                blocks[idx] = blocks.back();
                blocks.pop_back();
            }
        }
        uint64_t in_use = heap.bytesInUse();
        EXPECT_GT(in_use, 0u);
        for (hw::Vaddr va : blocks)
            heap.gfree(va);
        EXPECT_EQ(heap.bytesInUse(), 0u);
        return 0;
    });
    // Releasing the process returned every ghost frame.
    EXPECT_EQ(sys.vm().frames().count(sva::FrameType::Ghost), 0u);
}
