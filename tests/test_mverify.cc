/**
 * @file
 * Machine-code safety verifier tests.
 *
 * The McodeVerifySweep suite is the PR's acceptance property: across a
 * corpus of modules and every instrumentation configuration, the clean
 * compiler produces 0 findings, while every injected miscompile (every
 * kind at every site, fused and unfused) is detected. The remaining
 * tests pin down the gating behaviour: the translator refuses to sign
 * or cache unverifiable images, kernel module loading surfaces the
 * refusal, and VgConfig::verifyMcode turns the gate off.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/minject.hh"
#include "compiler/mverify.hh"
#include "compiler/translator.hh"
#include "kernel/system.hh"
#include "sim/context.hh"

using namespace vg;
using namespace vg::cc;

namespace
{

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
const std::vector<uint8_t> kKey(32, 0x11);

/** Clean corpus: loops, recursion, memory, memcpy, indirect calls,
 *  externs, allocas, multi-function control flow. */
const char *kCorpus[] = {
    // arithmetic + loop
    R"(
func @sum(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = const 1
  %2 = add %2, %4
  %1 = add %1, %2
  br head
done:
  ret %1
}
)",
    // recursion
    R"(
func @fib(1) {
entry:
  %1 = const 2
  %2 = icmp ult %0, %1
  condbr %2, base, rec
base:
  ret %0
rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @fib(%4)
  %6 = const 2
  %7 = sub %0, %6
  %8 = call @fib(%7)
  %9 = add %5, %8
  ret %9
}
)",
    // loads/stores through an alloca
    R"(
func @store_load(1) {
entry:
  %1 = alloca 16
  store.i64 %1, %0
  %2 = load.i64 %1
  %3 = const 8
  %4 = add %1, %3
  store.i32 %4, %2
  %5 = load.i32 %4
  ret %5
}
)",
    // memcpy + byte loop (mask-def / use gap for the clobber kind)
    R"(
func @blit(2) {
entry:
  %2 = const 64
  memcpy %1, %0, %2
  %3 = const 0
  %4 = const 0
  br head
head:
  %5 = icmp ult %4, %2
  condbr %5, body, done
body:
  %6 = add %1, %4
  %7 = load.i8 %6
  %3 = add %3, %7
  %8 = const 1
  %4 = add %4, %8
  br head
done:
  ret %3
}
)",
    // indirect + direct + extern calls
    R"(
func @target(1) {
entry:
  %1 = const 5
  %2 = add %0, %1
  ret %2
}

func @dispatch(1) {
entry:
  %1 = funcaddr @target
  %2 = callind %1(%0)
  %3 = call @target(%2)
  %4 = call @klog_val(%3)
  ret %4
}
)",
    // diamond join writing memory on both sides
    R"(
func @branchy(2) {
entry:
  %2 = alloca 8
  condbr %0, then, els
then:
  store.i64 %2, %0
  br done
els:
  store.i64 %2, %1
  br done
done:
  %3 = load.i64 %2
  ret %3
}
)",
};

struct NamedConfig
{
    const char *name;
    sim::VgConfig cfg;
};

std::vector<NamedConfig>
allConfigs()
{
    std::vector<NamedConfig> out;
    out.push_back({"full-fused", sim::VgConfig::full()});
    sim::VgConfig c = sim::VgConfig::full();
    c.fuseSandboxMasks = false;
    out.push_back({"full-unfused", c});
    c = sim::VgConfig::full();
    c.sandboxMemory = false;
    out.push_back({"cfi-only", c});
    c = sim::VgConfig::full();
    c.cfi = false;
    out.push_back({"sandbox-only-fused", c});
    c.fuseSandboxMasks = false;
    out.push_back({"sandbox-only-unfused", c});
    out.push_back({"native", sim::VgConfig::native()});
    return out;
}

/** Translate under @p cfg with the verifier gate disabled, so sweeps
 *  can inject faults and verify explicitly. */
std::shared_ptr<const MachineImage>
compileUngated(const char *text, sim::VgConfig cfg)
{
    cfg.verifyMcode = false;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(text, kCodeBase);
    EXPECT_TRUE(tr.ok) << tr.error;
    return tr.image;
}

MRule
expectedRule(Miscompile kind)
{
    switch (kind) {
    case Miscompile::DropMask:
    case Miscompile::ClobberMask: return MRule::UnmaskedAccess;
    case Miscompile::StripEntryLabel: return MRule::MissingEntryLabel;
    case Miscompile::StripReturnLabel:
        return MRule::MissingReturnLabel;
    case Miscompile::RawRet: return MRule::RawRet;
    case Miscompile::RawIndirectCall: return MRule::RawIndirectCall;
    case Miscompile::BadJumpTarget: return MRule::BadBranchTarget;
    case Miscompile::ForgeLabel: return MRule::LabelForgery;
    case Miscompile::TraceExitHijack: return MRule::SideExitEscape;
    case Miscompile::TraceDropMask: return MRule::UnmaskedAccess;
    case Miscompile::TraceStripHeadLabel:
        return MRule::MissingEntryLabel;
    case Miscompile::IflowDropSeal:
    case Miscompile::IflowRawStore:
    case Miscompile::IflowStatLeak:
    case Miscompile::IflowTraceSmuggle:
        break; // iflow kinds are invisible to the McodeVerifier
    }
    return MRule::UnmaskedAccess;
}

/** True for kinds that only have sites on images carrying spliced
 *  traces; those are exercised by the sweep in test_trace.cc. */
bool
traceOnlyKind(Miscompile kind)
{
    return kind == Miscompile::TraceExitHijack ||
           kind == Miscompile::TraceDropMask ||
           kind == Miscompile::TraceStripHeadLabel;
}

/** True for the information-flow kinds: they only have sites on images
 *  carrying ghost taint (and are deliberately invisible to the
 *  McodeVerifier); test_iflow.cc sweeps them. */
bool
iflowOnlyKind(Miscompile kind)
{
    return kind == Miscompile::IflowDropSeal ||
           kind == Miscompile::IflowRawStore ||
           kind == Miscompile::IflowStatLeak ||
           kind == Miscompile::IflowTraceSmuggle;
}

bool
hasRule(const McodeVerifyResult &res, MRule rule)
{
    return std::any_of(res.findings.begin(), res.findings.end(),
                       [&](const McodeFinding &f) {
                           return f.rule == rule;
                       });
}

} // namespace

// --------------------------------------------------------------------
// Acceptance sweep
// --------------------------------------------------------------------

TEST(McodeVerifySweep, CleanCorpusHasZeroFindingsUnderAllConfigs)
{
    for (const NamedConfig &nc : allConfigs()) {
        for (const char *text : kCorpus) {
            // Gate on: the translation itself must succeed...
            sim::SimContext ctx(nc.cfg);
            Translator translator(kKey, ctx);
            auto tr = translator.translateText(text, kCodeBase);
            ASSERT_TRUE(tr.ok)
                << "config " << nc.name << ": " << tr.error;
            EXPECT_EQ(tr.mverify.findings.size(), 0u) << nc.name;
            EXPECT_GT(tr.mverify.functionsChecked, 0u) << nc.name;
            // ... and an explicit re-verification agrees.
            McodeVerifier verifier(McodePolicy::fromConfig(nc.cfg));
            auto res = verifier.verify(*tr.image);
            EXPECT_TRUE(res.ok()) << "config " << nc.name << ":\n"
                                  << res.message();
            EXPECT_EQ(res.instsChecked, tr.image->code.size());
        }
    }
}

TEST(McodeVerifySweep, EveryInjectedMiscompileIsDetected)
{
    // Fused and unfused pipelines, every kind, every site, every
    // module: 100% detection, each with the kind's signature rule.
    McodeVerifier verifier{McodePolicy{}};
    size_t injected = 0;
    std::vector<size_t> perKind(allMiscompiles().size(), 0);

    for (bool fuse : {true, false}) {
        sim::VgConfig cfg = sim::VgConfig::full();
        cfg.fuseSandboxMasks = fuse;
        for (const char *text : kCorpus) {
            auto image = compileUngated(text, cfg);
            ASSERT_TRUE(image);
            for (size_t k = 0; k < allMiscompiles().size(); k++) {
                Miscompile kind = allMiscompiles()[k];
                size_t sites = miscompileSites(*image, kind).size();
                for (size_t s = 0; s < sites; s++) {
                    MachineImage bad = *image;
                    ASSERT_TRUE(injectMiscompile(bad, kind, s));
                    auto res = verifier.verify(bad);
                    EXPECT_FALSE(res.ok())
                        << miscompileName(kind) << " site " << s
                        << (fuse ? " (fused)" : " (unfused)")
                        << " went undetected";
                    EXPECT_TRUE(hasRule(res, expectedRule(kind)))
                        << miscompileName(kind) << " site " << s
                        << " detected, but without rule "
                        << ruleId(expectedRule(kind)) << ":\n"
                        << res.message();
                    injected++;
                    perKind[k]++;
                }
            }
        }
    }
    // The corpus must actually exercise every kind (trace-splice kinds
    // need a spliced image and are swept in test_trace.cc).
    for (size_t k = 0; k < perKind.size(); k++) {
        if (traceOnlyKind(allMiscompiles()[k]) ||
            iflowOnlyKind(allMiscompiles()[k]))
            continue;
        EXPECT_GT(perKind[k], 0u)
            << "no sites for " << miscompileName(allMiscompiles()[k]);
    }
    EXPECT_GT(injected, 100u);
}

// --------------------------------------------------------------------
// Gating
// --------------------------------------------------------------------

TEST(McodeVerifyGate, TranslatorRefusesAndNeverCachesBadImages)
{
    sim::SimContext ctx;
    Translator translator(kKey, ctx);
    translator.setPostLayoutHook([](MachineImage &image) {
        ASSERT_TRUE(injectMiscompile(image, Miscompile::DropMask, 0));
    });

    auto tr = translator.translateText(kCorpus[2], kCodeBase);
    EXPECT_FALSE(tr.ok);
    EXPECT_NE(tr.error.find("mcode verifier rejected"),
              std::string::npos)
        << tr.error;
    EXPECT_NE(tr.error.find("VG-SB-01"), std::string::npos) << tr.error;
    EXPECT_EQ(ctx.stats().get("translator.mverify_rejected"), 1u);
    EXPECT_GE(ctx.stats().get("mverify.findings"), 1u);

    // The rejected image must not have been cached: with the hook
    // cleared the same source translates cleanly (a cache hit would
    // have handed back the refused translation or its error).
    translator.setPostLayoutHook(nullptr);
    auto ok = translator.translateText(kCorpus[2], kCodeBase);
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_FALSE(ok.fromCache);
    EXPECT_EQ(ok.mverify.findings.size(), 0u);
}

TEST(McodeVerifyGate, KernelModuleLoadRefusesUnverifiableCode)
{
    kern::System sys;
    sys.boot();

    const char *module_text = R"(
func @probe(1) {
entry:
  %1 = load.i64 %0
  ret %1
}
)";

    sys.vm().translator().setPostLayoutHook([](MachineImage &image) {
        ASSERT_TRUE(
            injectMiscompile(image, Miscompile::StripEntryLabel, 0));
    });
    std::string err;
    EXPECT_FALSE(sys.kernel().loadModule("evil", module_text, &err));
    EXPECT_NE(err.find("mcode verifier rejected"), std::string::npos)
        << err;
    EXPECT_NE(err.find("VG-CFI-03"), std::string::npos) << err;
    EXPECT_EQ(sys.ctx().stats().get("kernel.modules_loaded"), 0u);

    // Same text loads fine once the pipeline stops miscompiling.
    sys.vm().translator().setPostLayoutHook(nullptr);
    EXPECT_TRUE(sys.kernel().loadModule("probe", module_text, &err))
        << err;
    EXPECT_EQ(sys.ctx().stats().get("kernel.modules_loaded"), 1u);
}

TEST(McodeVerifyGate, VerifyMcodeKnobDisablesTheGate)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.verifyMcode = false;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    translator.setPostLayoutHook([](MachineImage &image) {
        ASSERT_TRUE(injectMiscompile(image, Miscompile::RawRet, 0));
    });

    // With the knob off the miscompiled image sails through (this is
    // exactly the pre-verifier trust model)...
    auto tr = translator.translateText(kCorpus[0], kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_EQ(ctx.stats().get("mverify.functions"), 0u);

    // ...and an explicit verification shows what the gate would have
    // caught.
    McodeVerifier verifier{McodePolicy{}};
    auto res = verifier.verify(*tr.image);
    EXPECT_TRUE(hasRule(res, MRule::RawRet)) << res.message();
}

// --------------------------------------------------------------------
// Policy and individual rules
// --------------------------------------------------------------------

TEST(McodeVerify, PolicyFollowsInstrumentationConfig)
{
    // A native compile passes its own (structural-only) policy but
    // fails the full policy — uninstrumented code is only acceptable
    // when the configuration says the kernel runs uninstrumented.
    auto image = compileUngated(kCorpus[2], sim::VgConfig::native());
    ASSERT_TRUE(image);

    McodeVerifier structural(
        McodePolicy::fromConfig(sim::VgConfig::native()));
    EXPECT_TRUE(structural.verify(*image).ok());

    McodeVerifier full{McodePolicy{}};
    auto res = full.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, MRule::RawRet));
    EXPECT_TRUE(hasRule(res, MRule::MissingEntryLabel));
    EXPECT_TRUE(hasRule(res, MRule::UnmaskedAccess));
}

TEST(McodeVerify, LabelValueAsDataConstantIsRejected)
{
    // Label uniqueness (paper S 5.3): kernel code must not be able to
    // manufacture the CFI label value as data. The translator refuses
    // such modules outright.
    sim::SimContext ctx;
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(R"(
func @forge(0) {
entry:
  %0 = const 0x00CF1CF1
  ret %0
}
)",
                                       kCodeBase);
    EXPECT_FALSE(tr.ok);
    EXPECT_NE(tr.error.find("VG-CFI-05"), std::string::npos)
        << tr.error;
}

TEST(McodeVerify, MidSequenceJumpDoesNotCountAsMasked)
{
    // Hand-build an image where a jump enters the unfused mask
    // sequence partway: the sequence's result must NOT be treated as
    // masked, because the skipped prefix never executed.
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.fuseSandboxMasks = false;
    auto clean = compileUngated(kCorpus[2], cfg); // store_load
    ASSERT_TRUE(clean);
    MachineImage image = *clean;

    size_t mulIdx = SIZE_MAX;
    for (size_t i = 0; i + sandboxMaskSeqLen <= image.code.size(); i++) {
        int dst = -1;
        if (matchSandboxMaskSeq(image.code, i, dst) >= 0) {
            mulIdx = i + sandboxMaskSeqLen - 1;
            break;
        }
    }
    ASSERT_NE(mulIdx, SIZE_MAX) << "corpus lost its mask sequence";

    // Append a Jump into the sequence interior. The module is a single
    // function, so the appended slot extends it; a trailing Jump is a
    // legal function end, keeping every other rule quiet.
    MInst jump;
    jump.op = MOp::Jump;
    jump.imm = image.codeBase + (mulIdx - 2) * mInstBytes;
    image.code.push_back(jump);

    McodeVerifier verifier{McodePolicy{}};
    auto res = verifier.verify(image);
    EXPECT_TRUE(hasRule(res, MRule::UnmaskedAccess)) << res.message();
}

TEST(McodeVerify, StatsRecordVerificationWork)
{
    sim::SimContext ctx;
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kCorpus[4], kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_EQ(ctx.stats().get("mverify.functions"), 2u);
    EXPECT_EQ(ctx.stats().get("mverify.insts"), tr.image->code.size());
    EXPECT_EQ(ctx.stats().get("mverify.findings"), 0u);
    // wall_ns is timing-dependent; it only has to exist as a counter.
    EXPECT_EQ(ctx.stats().all().count("mverify.wall_ns"), 1u);

    // Cache hits skip re-verification: counters must not move.
    uint64_t fns = ctx.stats().get("mverify.functions");
    auto again = translator.translateText(kCorpus[4], kCodeBase);
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.fromCache);
    EXPECT_EQ(ctx.stats().get("mverify.functions"), fns);
}
