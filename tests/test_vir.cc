/**
 * @file
 * VIR tests: builder, verifier, printer/parser roundtrip.
 */

#include <gtest/gtest.h>

#include "vir/builder.hh"
#include "vir/text.hh"
#include "vir/verifier.hh"

using namespace vg::vir;

namespace
{

/** Build: func @addmul(a, b) { return (a + b) * 2; } */
Module
buildAddMul()
{
    Module mod;
    mod.name = "addmul";
    IrBuilder b(mod);
    b.beginFunction("addmul", 2);
    int entry = b.makeBlock("entry");
    b.setInsertPoint(entry);
    int sum = b.add(0, 1);
    int two = b.constI(2);
    int prod = b.mul(sum, two);
    b.ret(prod);
    return mod;
}

} // namespace

TEST(Builder, ProducesValidModule)
{
    Module mod = buildAddMul();
    EXPECT_TRUE(verify(mod).ok());
    const Function *fn = mod.function("addmul");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->numParams, 2);
    EXPECT_EQ(fn->blocks.size(), 1u);
    EXPECT_EQ(fn->instCount(), 4u);
}

TEST(Builder, MultiBlockControlFlow)
{
    Module mod;
    IrBuilder b(mod);
    b.beginFunction("max", 2);
    int entry = b.makeBlock("entry");
    int take_a = b.makeBlock("take_a");
    int take_b = b.makeBlock("take_b");
    b.setInsertPoint(entry);
    int c = b.icmp(CmpPred::Ugt, 0, 1);
    b.condBr(c, take_a, take_b);
    b.setInsertPoint(take_a);
    b.ret(0);
    b.setInsertPoint(take_b);
    b.ret(1);
    EXPECT_TRUE(verify(mod).ok()) << verify(mod).message();
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module mod;
    IrBuilder b(mod);
    b.beginFunction("bad", 0);
    int entry = b.makeBlock("entry");
    b.setInsertPoint(entry);
    b.constI(1); // no terminator
    auto r = verify(mod);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.message().find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesOutOfRangeRegister)
{
    Module mod;
    Function fn;
    fn.name = "bad";
    fn.numRegs = 1;
    Inst i;
    i.op = Opcode::Mov;
    i.dst = 0;
    i.a = 5; // out of range
    Inst r;
    r.op = Opcode::Ret;
    fn.blocks.push_back({"entry", {i, r}});
    mod.functions.push_back(fn);
    EXPECT_FALSE(verify(mod).ok());
}

TEST(Verifier, CatchesBadBranchTarget)
{
    Module mod;
    Function fn;
    fn.name = "bad";
    Inst br;
    br.op = Opcode::Br;
    br.target0 = 7;
    fn.blocks.push_back({"entry", {br}});
    mod.functions.push_back(fn);
    EXPECT_FALSE(verify(mod).ok());
}

TEST(Verifier, CatchesDuplicateFunction)
{
    Module mod = buildAddMul();
    mod.functions.push_back(mod.functions[0]);
    auto r = verify(mod);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.message().find("duplicate"), std::string::npos);
}

TEST(Verifier, CatchesEmptyBlockAndHugeAlloca)
{
    Module mod;
    Function fn;
    fn.name = "f";
    fn.blocks.push_back({"empty", {}});
    mod.functions.push_back(fn);
    EXPECT_FALSE(verify(mod).ok());

    Module mod2;
    IrBuilder b(mod2);
    b.beginFunction("g", 0);
    int entry = b.makeBlock("entry");
    b.setInsertPoint(entry);
    b.alloca(2 << 20); // over the limit
    b.retVoid();
    EXPECT_FALSE(verify(mod2).ok());
}

// --------------------------------------------------------------------
// Diagnostic content: the exact errors the verifier reports, and their
// ordering. The translator surfaces these verbatim to module authors.
// --------------------------------------------------------------------

TEST(VerifierDiagnostics, BadRegisterNamesRoleAndRange)
{
    Module mod;
    Function fn;
    fn.name = "bad";
    fn.numRegs = 1;
    Inst i;
    i.op = Opcode::Mov;
    i.dst = 0;
    i.a = 5;
    Inst r;
    r.op = Opcode::Ret;
    fn.blocks.push_back({"entry", {i, r}});
    mod.functions.push_back(fn);
    auto v = verify(mod);
    ASSERT_EQ(v.errors.size(), 1u);
    EXPECT_EQ(v.errors[0],
              "bad/entry[0] mov: src register %5 out of range (1 regs)");
}

TEST(VerifierDiagnostics, BadBlockTargetNamesIndex)
{
    Module mod;
    Function fn;
    fn.name = "bad";
    Inst br;
    br.op = Opcode::Br;
    br.target0 = 7;
    fn.blocks.push_back({"entry", {br}});
    mod.functions.push_back(fn);
    auto v = verify(mod);
    ASSERT_EQ(v.errors.size(), 1u);
    EXPECT_EQ(v.errors[0], "bad/entry[0] br: bad branch block index 7");
}

TEST(VerifierDiagnostics, FallthroughOffEndOfBlock)
{
    Module mod;
    IrBuilder b(mod);
    b.beginFunction("f", 0);
    int entry = b.makeBlock("entry");
    b.setInsertPoint(entry);
    b.constI(1); // block just stops
    auto v = verify(mod);
    ASSERT_EQ(v.errors.size(), 1u);
    EXPECT_EQ(v.errors[0],
              "f/entry[0] const: block does not end in a terminator");
}

TEST(VerifierDominance, UseBeforeAnyDefinition)
{
    ParseResult p = parse(R"(
func @f(1) {
entry:
  %2 = add %0, %1
  ret %2
}
)");
    ASSERT_TRUE(p.ok) << p.error;
    auto v = verify(p.module);
    ASSERT_EQ(v.errors.size(), 1u);
    EXPECT_EQ(v.errors[0], "f/entry[0] add: register %1 used before any "
                           "dominating definition");
}

TEST(VerifierDominance, OneSidedDefinitionDoesNotDominateJoin)
{
    // %2 is defined on the then-path only; the join must reject it.
    ParseResult p = parse(R"(
func @f(1) {
entry:
  condbr %0, then, els
then:
  %1 = const 1
  %2 = add %1, %1
  br done
els:
  %1 = const 2
  br done
done:
  ret %2
}
)");
    ASSERT_TRUE(p.ok) << p.error;
    auto v = verify(p.module);
    ASSERT_EQ(v.errors.size(), 1u);
    EXPECT_NE(v.errors[0].find("register %2 used before any dominating"),
              std::string::npos)
        << v.errors[0];

    // ... but a register defined on *both* paths (here %1) is fine.
    ParseResult p2 = parse(R"(
func @f(1) {
entry:
  condbr %0, then, els
then:
  %1 = const 1
  br done
els:
  %1 = const 2
  br done
done:
  ret %1
}
)");
    ASSERT_TRUE(p2.ok) << p2.error;
    EXPECT_TRUE(verify(p2.module).ok()) << verify(p2.module).message();
}

TEST(VerifierDominance, LoopCarriedDefinitionIsAccepted)
{
    // %1 and %2 are defined in entry and updated around the loop; back
    // edges must not flag them (meet over paths, not program order).
    ParseResult p = parse(R"(
func @sum(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = const 1
  %2 = add %2, %4
  %1 = add %1, %2
  br head
done:
  ret %1
}
)");
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_TRUE(verify(p.module).ok()) << verify(p.module).message();
}

TEST(VerifierDominance, OrderingIsStableAndStructuralErrorsFirst)
{
    // Two functions, each with one dominance error, plus a structural
    // error in the first: errors arrive function by function, with
    // structural errors before dominance errors within a function, and
    // the whole report is reproducible run to run.
    ParseResult p = parse(R"(
func @a(0) {
entry:
  %0 = mov %1
  ret %0
}

func @b(0) {
entry:
  %0 = mov %1
  ret %0
}
)");
    ASSERT_TRUE(p.ok) << p.error;
    // Give @a an out-of-range register too: dominance is then skipped
    // for @a (its bitsets could not be sized) but still runs for @b.
    p.module.functions[0].blocks[0].insts[0].a = 9;
    auto v1 = verify(p.module);
    auto v2 = verify(p.module);
    EXPECT_EQ(v1.message(), v2.message());
    ASSERT_EQ(v1.errors.size(), 2u);
    EXPECT_NE(v1.errors[0].find("a/entry[0] mov: src register %9"),
              std::string::npos)
        << v1.errors[0];
    EXPECT_EQ(v1.errors[1], "b/entry[0] mov: register %1 used before "
                            "any dominating definition");
}

TEST(Text, PrintParseRoundtrip)
{
    Module mod = buildAddMul();
    std::string text = print(mod);
    ParseResult parsed = parse(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.module.name, "addmul");
    EXPECT_EQ(print(parsed.module), text);
}

TEST(Text, ParsesAllInstructionForms)
{
    const char *src = R"(
module "everything"

func @f(2) {
entry:
  %2 = const 0xff00
  %3 = mov %0
  %4 = add %2, %3
  %5 = sub %4, %2
  %6 = mul %5, %5
  %7 = udiv %6, %4
  %8 = urem %6, %4
  %9 = and %7, %8
  %10 = or %9, %2
  %11 = xor %10, %3
  %12 = shl %11, %2
  %13 = lshr %12, %2
  %14 = ashr %13, %2
  %15 = icmp ult %13, %14
  %16 = alloca 64
  store.i64 %16, %14
  %17 = load.i32 %16
  memcpy %16, %16, %2
  %18 = funcaddr @g
  %19 = callind %18(%17)
  %20 = call @g(%19, %1)
  condbr %15, then, done
then:
  br done
done:
  ret %20
}

func @g(2) {
entry:
  ret %0
}
)";
    ParseResult parsed = parse(src);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto v = verify(parsed.module);
    EXPECT_TRUE(v.ok()) << v.message();
    const Function *f = parsed.module.function("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->blocks.size(), 3u);
    EXPECT_EQ(f->numRegs, 21);

    // Idempotent print->parse->print.
    std::string once = print(parsed.module);
    ParseResult again = parse(once);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(print(again.module), once);
}

TEST(Text, RejectsGarbage)
{
    EXPECT_FALSE(parse("func @f(0) {\nentry:\n  frobnicate %1\n}\n").ok);
    EXPECT_FALSE(parse("ret").ok);
    EXPECT_FALSE(parse("func @f(0) {\nentry:\n  ret\n").ok); // no '}'
    EXPECT_FALSE(parse("func @f(0) {\n  ret\n}\n").ok); // inst w/o block
}

TEST(Text, CommentsAndWhitespaceIgnored)
{
    const char *src = "module \"m\"\n"
                      "; a full-line comment\n"
                      "func @f(0) {\n"
                      "entry:\n"
                      "   %0 = const 7 ; trailing comment\n"
                      "   ret %0\n"
                      "}\n";
    ParseResult parsed = parse(src);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.module.functions[0].instCount(), 2u);
}
