/**
 * @file
 * The S 7 security experiments: a malicious kernel module mounts the
 * direct-read attack and the signal-handler code-injection attack on
 * ssh-agent. On the baseline kernel both steal the secret; under
 * Virtual Ghost both fail and the agent runs to completion unaffected.
 */

#include <gtest/gtest.h>

#include "apps/ssh_common.hh"
#include "attacks/rootkit.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::apps;
using namespace vg::attacks;

namespace
{

SystemConfig
smallConfig(sim::VgConfig vg)
{
    SystemConfig cfg;
    cfg.vg = vg;
    cfg.memFrames = 4096;
    cfg.diskBlocks = 4096;
    cfg.rsaBits = 384;
    return cfg;
}

const std::string kSecret = "GHOST-SECRET-KEY"; // 16 bytes

struct AttackRun
{
    int agentExit = -1;
    uint64_t secretVa = 0;
};

/** Run the agent and an attacker driver side by side. */
AttackRun
runAgentUnderAttack(System &sys, bool agent_uses_ghost,
                    const std::function<void(Kernel &, uint64_t pid,
                                             uint64_t secret_va)> &mount)
{
    AttackRun run;

    AgentConfig agent_cfg;
    agent_cfg.secret = kSecret;
    agent_cfg.useGhostMemory = agent_uses_ghost;
    agent_cfg.maxRequests = 0; // no clients; exit after the spins
    agent_cfg.idleSpins = 30;

    uint64_t agent_pid = sys.kernel().spawn(
        "ssh-agent", [&](UserApi &api) {
            return sshAgent(api, agent_cfg);
        });

    sys.kernel().spawn("attacker", [&, agent_pid](UserApi &api) {
        // Wait until the agent has stashed its secret.
        while (agentSecretAddress() == 0)
            api.yield();
        run.secretVa = agentSecretAddress();
        mount(api.kernel(), agent_pid, run.secretVa);
        return 0;
    });

    sys.kernel().run();
    auto it = sys.kernel().exitCodes().find(agent_pid);
    run.agentExit = it == sys.kernel().exitCodes().end() ? -1
                                                         : it->second;
    return run;
}

std::vector<uint8_t>
secretBytes()
{
    return std::vector<uint8_t>(kSecret.begin(), kSecret.end());
}

} // namespace

TEST(Attack1, SucceedsOnBaselineKernel)
{
    // Baseline: no VG, agent keeps the secret in traditional memory
    // (the paper's "malloc configured for traditional memory").
    System sys(smallConfig(sim::VgConfig::native()));
    sys.boot();

    AttackRun run = runAgentUnderAttack(
        sys, /*ghost=*/false,
        [](Kernel &kernel, uint64_t, uint64_t secret_va) {
            std::string err;
            ASSERT_TRUE(mountAttack1(kernel, secret_va, &err)) << err;
        });

    EXPECT_EQ(run.agentExit, 0);
    AttackResult r = checkAttack1(sys.kernel(), secretBytes());
    EXPECT_TRUE(r.dataStolen) << r.detail;
}

TEST(Attack1, FailsUnderVirtualGhost)
{
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();

    AttackRun run = runAgentUnderAttack(
        sys, /*ghost=*/true,
        [](Kernel &kernel, uint64_t, uint64_t secret_va) {
            std::string err;
            ASSERT_TRUE(mountAttack1(kernel, secret_va, &err)) << err;
        });

    // The agent is unaffected and exits normally (S 7).
    EXPECT_EQ(run.agentExit, 0);
    AttackResult r = checkAttack1(sys.kernel(), secretBytes());
    EXPECT_FALSE(r.dataStolen) << r.detail;
    // The module did run and log — it just read deflected junk
    // (the instrumented loads executed on the simulated CPU).
    EXPECT_FALSE(r.loot.empty());
    EXPECT_GT(sys.ctx().stats().get("exec.insts"), 0u);
}

TEST(Attack2, SucceedsOnBaselineKernel)
{
    System sys(smallConfig(sim::VgConfig::native()));
    sys.boot();

    AttackResult mounted;
    AttackRun run = runAgentUnderAttack(
        sys, /*ghost=*/false,
        [&](Kernel &kernel, uint64_t pid, uint64_t secret_va) {
            mounted = mountAttack2(kernel, pid, secret_va,
                                   kSecret.size());
        });

    EXPECT_TRUE(mounted.mounted) << mounted.detail;
    EXPECT_EQ(run.agentExit, 0);
    AttackResult r = checkAttack2(sys.kernel(), secretBytes());
    EXPECT_TRUE(r.dataStolen) << r.detail;
}

TEST(Attack2, FailsUnderVirtualGhost)
{
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();

    AttackResult mounted;
    AttackRun run = runAgentUnderAttack(
        sys, /*ghost=*/true,
        [&](Kernel &kernel, uint64_t pid, uint64_t secret_va) {
            mounted = mountAttack2(kernel, pid, secret_va,
                                   kSecret.size());
        });

    // The module loads and arms, but sva.ipush.function refuses the
    // exploit address and the signal is dropped.
    EXPECT_TRUE(mounted.mounted) << mounted.detail;
    EXPECT_EQ(run.agentExit, 0);
    AttackResult r = checkAttack2(sys.kernel(), secretBytes());
    EXPECT_FALSE(r.dataStolen) << r.detail;
    EXPECT_GT(sys.ctx().stats().get("kernel.signals_refused"), 0u);
    EXPECT_GT(sys.vm().violationCount(), 0u);
}

TEST(Attack2, GhostMemoryAloneStopsAttack1StyleReadsInExploit)
{
    // Even if the handler were permitted, under VG the module's own
    // loads are sandboxed; verify the deflection machinery fires when
    // the rootkit's read handler is mounted against a ghost secret.
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();

    uint64_t before = sys.ctx().stats().get("exec.insts");
    AttackRun run = runAgentUnderAttack(
        sys, /*ghost=*/true,
        [](Kernel &kernel, uint64_t, uint64_t secret_va) {
            std::string err;
            ASSERT_TRUE(mountAttack1(kernel, secret_va, &err)) << err;
        });
    EXPECT_EQ(run.agentExit, 0);
    // Instrumented module code actually executed.
    EXPECT_GT(sys.ctx().stats().get("exec.insts"), before);
}

TEST(Attack3, RingRedirectionSucceedsOnBaselineKernel)
{
    // Baseline: the hostile OS points a NIC TX ring descriptor at the
    // frame holding the victim's (traditional-memory) secret and the
    // device happily ships it onto the wire.
    System sys(smallConfig(sim::VgConfig::native()));
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr va = api.mmap(hw::pageSize);
        for (size_t i = 0; i < kSecret.size(); i++)
            api.poke(va + i, 1, uint64_t(uint8_t(kSecret[i])));
        auto pte = sys.mmu().probe(va);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        AttackResult r = mountAttack3(sys.nicA(), sys.nicB(), pa,
                                      secretBytes());
        EXPECT_TRUE(r.mounted) << r.detail;
        EXPECT_TRUE(r.dataStolen) << r.detail;
        return 0;
    });
}

TEST(Attack3, RingRedirectionFailsUnderVirtualGhost)
{
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, kSecret.data(), kSecret.size());
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        uint64_t blocked_before =
            sys.ctx().stats().get("nic.ring_blocked_dma");
        AttackResult r = mountAttack3(sys.nicA(), sys.nicB(), pa,
                                      secretBytes());
        EXPECT_TRUE(r.mounted) << r.detail;
        EXPECT_FALSE(r.dataStolen) << r.detail;
        // Zero disclosure: nothing went over the wire at all, and the
        // blocked attempt was recorded.
        EXPECT_TRUE(r.loot.empty());
        EXPECT_GT(sys.ctx().stats().get("nic.ring_blocked_dma"),
                  blocked_before);
        return 0;
    });
}

TEST(Attack4, StaleSwapReplayRefusedUnderVirtualGhost)
{
    // The hostile OS scrapes a sealed page off the swap store, lets
    // the victim fault it in and update it, then replays the stale
    // blob over the fresh slot. Its MAC is intact — but it was sealed
    // under a superseded swap generation, so swap-in refuses it.
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        EXPECT_TRUE(
            api.ghostWrite(gva, kSecret.data(), kSecret.size()));
        EXPECT_EQ(sys.kernel().swapOutGhost(api.pid(), 1), 1u);

        uint64_t violations = sys.vm().violationCount();
        AttackResult r = mountAttack4(
            sys.kernel(), sys.disk(), api.pid(), gva,
            SwapAttack::StaleReplay,
            [&]() {
                // Normal activity between scrape and replay: the
                // victim faults the page in, updates the secret, and
                // memory pressure pushes it back out.
                char c = 0;
                if (!api.ghostRead(gva, &c, 1))
                    return false;
                const char fresh[] = "FRESH-SECRET-V2!";
                if (!api.ghostWrite(gva, fresh, sizeof(fresh)))
                    return false;
                return sys.kernel().swapOutGhost(api.pid(), 1) == 1;
            },
            secretBytes());
        EXPECT_TRUE(r.mounted) << r.detail;
        // Zero disclosure: the scraped slot is ciphertext only.
        EXPECT_FALSE(r.dataStolen) << r.detail;

        // The victim's next access faults the stale blob in — the
        // generation-keyed MAC fails and nothing is mapped.
        char buf[16] = {};
        EXPECT_FALSE(api.ghostRead(gva, buf, sizeof(buf)));
        EXPECT_GT(sys.vm().violationCount(), violations);
        for (char c : buf)
            EXPECT_EQ(c, 0);
        return 0;
    });
}

TEST(Attack4, BitFlippedSwapPageRefusedUnderVirtualGhost)
{
    // Same surface, simpler edit: flip one ciphertext bit in place.
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        EXPECT_TRUE(
            api.ghostWrite(gva, kSecret.data(), kSecret.size()));
        EXPECT_EQ(sys.kernel().swapOutGhost(api.pid(), 1), 1u);

        uint64_t violations = sys.vm().violationCount();
        AttackResult r = mountAttack4(sys.kernel(), sys.disk(),
                                      api.pid(), gva,
                                      SwapAttack::BitFlip, nullptr,
                                      secretBytes());
        EXPECT_TRUE(r.mounted) << r.detail;
        EXPECT_FALSE(r.dataStolen) << r.detail;
        EXPECT_FALSE(r.loot.empty());

        char buf[16] = {};
        EXPECT_FALSE(api.ghostRead(gva, buf, sizeof(buf)));
        EXPECT_GT(sys.vm().violationCount(), violations);
        for (char c : buf)
            EXPECT_EQ(c, 0);
        return 0;
    });
}

TEST(Attacks, IagoRandomnessDefeatedByVm)
{
    // The S 4.7 protection: a rigged /dev/random cannot feed the
    // application constants when VG serves randomness.
    System sys(smallConfig(sim::VgConfig::full()));
    sys.boot();
    sys.kernel().setRngRigged(true);
    sys.runProcess("rng", [](UserApi &api) {
        uint8_t buf[32];
        api.osRandom(buf, sizeof(buf));
        int rigged = 0;
        for (uint8_t b : buf)
            rigged += b == 0x41 ? 1 : 0;
        EXPECT_LT(rigged, 8);
        return 0;
    });
}
