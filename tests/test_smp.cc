/**
 * @file
 * SMP subsystem tests.
 *
 * Three layers of guarantees:
 *
 *  1. Equivalence: with vcpus=1 the SMP scheduler must be stat- and
 *     time-identical to the legacy single-CPU loop (differential sweep
 *     over mixed workloads, in the style of KmemFastSweep).
 *  2. Shootdown safety: under random remap/retype/invlpg storms across
 *     2-4 vCPUs, no vCPU's TLB ever references a freed frame, and
 *     frame retypes are refused while a stale translation survives.
 *  3. Per-CPU SVA state: the liveCpu double-save/load guard, IC
 *     migration across CPUs, the per-CPU keyed Kmem translation cache,
 *     and the per-CPU stat namespaces with exact rollups.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <optional>
#include <vector>

#include "crypto/drbg.hh"
#include "hw/cpu.hh"
#include "hw/disk.hh"
#include "hw/iommu.hh"
#include "hw/mmu.hh"
#include "hw/phys_mem.hh"
#include "hw/tpm.hh"
#include "kernel/kmem.hh"
#include "kernel/system.hh"
#include "sva/vm.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

SystemConfig
smpConfig(unsigned vcpus, bool smp_scheduler = true)
{
    SystemConfig cfg;
    cfg.vg = sim::VgConfig::full();
    cfg.vg.vcpus = vcpus;
    cfg.vg.smpScheduler = smp_scheduler;
    cfg.memFrames = 4096;  // 16 MB
    cfg.diskBlocks = 4096; // 16 MB
    cfg.rsaBits = 384;
    return cfg;
}

/** Latest per-CPU clock = the machine's makespan. */
sim::Cycles
makespan(System &sys)
{
    sim::Cycles t = 0;
    for (unsigned c = 0; c < sys.ctx().vcpuCount(); c++)
        t = std::max(t, sys.ctx().clockOf(c).now());
    return t;
}

/**
 * Mixed workload for the differential sweep: an ssh-like echo session,
 * postmark-style file churn, fork/signal traffic, ghost memory, and
 * compute bursts long enough to draw timer preemptions. Fully
 * deterministic given @p seed.
 */
void
runMixedWorkload(System &sys, int seed)
{
    crypto::CtrDrbg rng({uint8_t(seed), 's', 'm', 'p'});
    uint64_t rounds = 4 + rng.nextBounded(4);
    uint64_t chunk = 256 + rng.nextBounded(1024);
    uint64_t files = 6 + rng.nextBounded(6);
    uint64_t fsize = 512 + rng.nextBounded(4096);
    uint64_t burst = 200000 + rng.nextBounded(400000);

    Kernel &k = sys.kernel();

    // ssh-like session: server echoes; client sends/receives in
    // chunks through ghost memory staging.
    k.spawn("sshd", [rounds, chunk](UserApi &api) {
        int ls = api.socket();
        api.bind(ls, 2200);
        api.listen(ls);
        int conn = api.accept(ls);
        if (conn < 0)
            return 1;
        std::vector<char> buf(chunk);
        for (uint64_t r = 0; r < rounds; r++) {
            int64_t n = api.recvHost(conn, buf.data(), buf.size());
            if (n <= 0)
                break;
            api.sendHost(conn, buf.data(), uint64_t(n));
        }
        api.close(conn);
        api.close(ls);
        return 0;
    });

    k.spawn("ssh", [rounds, chunk, burst](UserApi &api) {
        api.yield(); // let the server reach listen()
        int fd = api.connect(2200);
        if (fd < 0)
            return 1;
        hw::Vaddr gva = api.allocGhost(2);
        std::vector<char> msg(chunk, 'c');
        std::vector<char> back(chunk);
        for (uint64_t r = 0; r < rounds; r++) {
            // Stage through ghost memory like the paper's ghosting ssh.
            api.ghostWrite(gva, msg.data(), msg.size());
            api.ghostRead(gva, msg.data(), msg.size());
            api.sendHost(fd, msg.data(), msg.size());
            uint64_t got = 0;
            while (got < chunk) {
                int64_t n = api.recvHost(fd, back.data() + got,
                                         chunk - got);
                if (n <= 0)
                    return 2;
                got += uint64_t(n);
            }
            api.compute(burst / 4);
        }
        api.freeGhost(gva, 2);
        api.close(fd);
        return 0;
    });

    // postmark-style file churn.
    k.spawn("postmark", [files, fsize](UserApi &api) {
        hw::Vaddr buf = api.mmap(2 * fsize + hw::pageSize);
        for (uint64_t i = 0; i < fsize; i += 8)
            api.poke(buf + i, 8, i * 2654435761ull);
        for (uint64_t f = 0; f < files; f++) {
            std::string path = "/pm" + std::to_string(f);
            int fd = api.open(path, true);
            if (fd < 0)
                return 1;
            api.write(fd, buf, fsize);
            api.lseek(fd, 0, 0);
            api.read(fd, buf + fsize, fsize);
            api.close(fd);
            if (f % 2 == 1)
                api.unlink(path);
        }
        return 0;
    });

    // fork/signal/compute traffic (draws timer preemptions).
    k.spawn("churn", [burst](UserApi &api) {
        int got = 0;
        api.installSignalHandler(
            10, [&](int signum) { got = signum; }, true);
        uint64_t self = api.pid();
        uint64_t child = api.fork([self, burst](UserApi &capi) {
            capi.compute(burst);
            capi.kill(self, 10);
            return 7;
        });
        api.compute(burst);
        int status = 0;
        api.waitpid(child, status);
        return status == 7 && got == 10 ? 0 : 1;
    });

    k.run();

    // Rootkit attempts: hostile kernel reads/writes aimed at the ghost
    // partition deflect through sandbox masking (attack telemetry).
    for (int i = 0; i < 32; i++) {
        uint64_t v = 0;
        k.kmem().kread(hw::ghostBase + rng.nextBounded(64) * 8, 8, v);
        k.kmem().kwrite(hw::ghostBase + rng.nextBounded(64) * 8, 8,
                        0x4141414141414141ull);
    }
}

} // namespace

// --------------------------------------------------------------------
// 1. vcpus=1 differential sweep: SMP scheduler vs legacy loop.
// --------------------------------------------------------------------

class SmpEquivalenceSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SmpEquivalenceSweep, SingleCpuMatchesLegacyScheduler)
{
    System smp(smpConfig(1, true));
    System legacy(smpConfig(1, false));
    smp.boot();
    legacy.boot();

    runMixedWorkload(smp, GetParam());
    runMixedWorkload(legacy, GetParam());

    // Bit-identical time and the *full* stat map.
    EXPECT_EQ(smp.ctx().clock().now(), legacy.ctx().clock().now());
    EXPECT_EQ(smp.ctx().stats().all(), legacy.ctx().stats().all());
    EXPECT_EQ(smp.kernel().exitCodes(), legacy.kernel().exitCodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpEquivalenceSweep,
                         ::testing::Values(1, 2, 3));

/** Single-CPU machines must not grow per-CPU stat namespaces: the
 *  vcpus=1 stat map stays literally what it was before SMP. */
TEST(Smp, NoPerCpuNamespacesAtOneVcpu)
{
    System sys(smpConfig(1));
    sys.boot();
    sys.runProcess("one", [](UserApi &api) {
        hw::Vaddr va = api.mmap(4 * hw::pageSize);
        for (int i = 0; i < 4; i++)
            api.poke(va + uint64_t(i) * hw::pageSize, 8, 1);
        return 0;
    });
    for (const auto &[name, value] : sys.ctx().stats().all())
        EXPECT_TRUE(name.rfind("cpu", 0) != 0)
            << "unexpected per-CPU counter " << name;
}

// --------------------------------------------------------------------
// 2. SMP scaling: independent work spreads across vCPUs.
// --------------------------------------------------------------------

TEST(Smp, ConcurrentComputeScalesAcrossFourVcpus)
{
    auto run = [](unsigned vcpus) {
        System sys(smpConfig(vcpus));
        sys.boot();
        for (int p = 0; p < 4; p++) {
            sys.kernel().spawn("worker" + std::to_string(p),
                               [](UserApi &api) {
                                   for (int i = 0; i < 20; i++) {
                                       api.compute(400000);
                                       api.getpid();
                                   }
                                   return 0;
                               });
        }
        sys.kernel().run();
        return makespan(sys);
    };

    sim::Cycles uni = run(1);
    sim::Cycles quad = run(4);
    // Four independent workers on four CPUs: >= 2x simulated
    // throughput (the paper-style scaling claim; ideal is ~4x).
    EXPECT_LE(2 * quad, uni)
        << "vcpus=4 makespan " << quad << " vs vcpus=1 " << uni;
}

/** Idle balancing: with more processes than CPUs all CPUs end up with
 *  comparable work, and processes migrate deterministically. */
TEST(Smp, IdleBalancingKeepsCpusBusy)
{
    System a(smpConfig(2)), b(smpConfig(2));
    for (System *sys : {&a, &b}) {
        sys->boot();
        for (int p = 0; p < 3; p++) {
            // Uneven lengths force one CPU idle while work remains.
            sys->kernel().spawn(
                "w" + std::to_string(p), [p](UserApi &api) {
                    for (int i = 0; i < 6 * (p + 1); i++)
                        api.compute(300000);
                    return 0;
                });
        }
        sys->kernel().run();
    }
    // Deterministic: two identical machines agree on every clock and
    // every counter (including kernel.migrations, if any fired).
    for (unsigned c = 0; c < 2; c++)
        EXPECT_EQ(a.ctx().clockOf(c).now(), b.ctx().clockOf(c).now());
    EXPECT_EQ(a.ctx().stats().all(), b.ctx().stats().all());
    // Both CPUs actually executed something.
    EXPECT_GT(a.ctx().stats().get("cpu0.user.insts"), 0u);
    EXPECT_GT(a.ctx().stats().get("cpu1.user.insts"), 0u);
}

// --------------------------------------------------------------------
// 3. Shootdown property test: random remap/retype/invlpg storms.
// --------------------------------------------------------------------

namespace
{

constexpr hw::Vaddr kUserVa = 0x400000;

/** Multi-vCPU SVA rig (no kernel): intrinsic-built user window plus
 *  enough spare frames for ghost/retype traffic. */
struct SmpRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::CpuSet cpus;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    kern::Kmem kmem;
    std::deque<hw::Frame> freeFrames;

    explicit SmpRig(unsigned vcpus)
        : ctx([vcpus] {
              sim::VgConfig cfg = sim::VgConfig::full();
              cfg.vcpus = vcpus;
              return cfg;
          }()),
          mem(512), cpus(mem, ctx), iommu(mem, ctx), tpm({'s', 'm'}),
          vm(ctx, mem, cpus[0].mmu(), iommu, tpm),
          kmem(ctx, mem, cpus[0].mmu(), vm)
    {
        vm.attachCpus(cpus);
        kmem.attachCpus(cpus);
        vm.install(384);
        vm.boot();
        for (hw::Frame f = 64; f < 448; f++)
            freeFrames.push_back(f);
        vm.setFrameProvider([this]() -> std::optional<hw::Frame> {
            if (freeFrames.empty())
                return std::nullopt;
            hw::Frame f = freeFrames.front();
            freeFrames.pop_front();
            return f;
        });
        vm.setFrameReceiver(
            [this](hw::Frame f) { freeFrames.push_back(f); });

        sva::SvaError err;
        EXPECT_TRUE(vm.declarePtPage(0, 4, &err)) << err.message;
        EXPECT_TRUE(vm.declarePtPage(60, 3, &err));
        EXPECT_TRUE(vm.installTable(0, 4, kUserVa, 60, &err));
        EXPECT_TRUE(vm.declarePtPage(61, 2, &err));
        EXPECT_TRUE(vm.installTable(60, 3, kUserVa, 61, &err));
        EXPECT_TRUE(vm.declarePtPage(62, 1, &err));
        EXPECT_TRUE(vm.installTable(61, 2, kUserVa, 62, &err));
        for (unsigned c = 0; c < cpus.count(); c++)
            cpus[c].mmu().setRoot(0);
    }

    /** The storm's core invariant: a freed frame is unreachable
     *  through every vCPU's TLB — nothing can read into it. */
    void
    assertNoStaleFreeTranslations(int op)
    {
        for (hw::Frame f = 1; f < 512; f++) {
            if (vm.frames()[f].type != sva::FrameType::Free)
                continue;
            for (unsigned c = 0; c < cpus.count(); c++)
                ASSERT_FALSE(cpus[c].mmu().tlbReferencesFrame(f))
                    << "op " << op << ": cpu" << c
                    << " TLB still references freed frame " << f;
        }
    }
};

} // namespace

class SmpShootdownStorm : public ::testing::TestWithParam<int>
{};

TEST_P(SmpShootdownStorm, NoCpuReadsThroughStaleTranslations)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 's', 'd'});
    unsigned vcpus = 2 + unsigned(GetParam()) % 3; // 2..4
    SmpRig rig(vcpus);
    sva::SvaError err;

    constexpr int npages = 8;
    // Data pages come from the allocator so unmap really frees them.
    std::vector<std::optional<hw::Frame>> mapped(npages);

    for (int op = 0; op < 1200; op++) {
        unsigned cpu = unsigned(rng.nextBounded(vcpus));
        rig.ctx.setActiveCpu(cpu);
        int page = int(rng.nextBounded(npages));
        hw::Vaddr va = kUserVa + uint64_t(page) * hw::pageSize;

        switch (rng.nextBounded(8)) {
          case 0:
          case 1: { // map a fresh frame
            if (mapped[page])
                break;
            hw::Frame f = rig.freeFrames.front();
            rig.freeFrames.pop_front();
            ASSERT_TRUE(rig.vm.mapPage(0, va, f, true, true, true,
                                       &err))
                << "op " << op << ": " << err.message;
            mapped[page] = f;
            break;
          }
          case 2:
          case 3: { // unmap (frees + must shoot down everywhere)
            if (!mapped[page])
                break;
            ASSERT_TRUE(rig.vm.unmapPage(0, va, &err))
                << "op " << op << ": " << err.message;
            rig.freeFrames.push_back(*mapped[page]);
            mapped[page] = std::nullopt;
            break;
          }
          case 4: { // protection change (remote TLBs must drop it)
            if (!mapped[page])
                break;
            ASSERT_TRUE(rig.vm.protectPage(
                0, va, rng.nextBounded(2) == 0, true, &err))
                << "op " << op << ": " << err.message;
            break;
          }
          case 5: { // ghost retype round-trip
            hw::Vaddr gva =
                hw::ghostBase + rng.nextBounded(4) * hw::pageSize;
            if (rig.vm.allocGhostMemory(1, 0, gva, 1, &err))
                EXPECT_TRUE(rig.vm.freeGhostMemory(1, 0, gva, 1, &err))
                    << "op " << op << ": " << err.message;
            break;
          }
          case 6: { // local invlpg storm
            rig.cpus[cpu].mmu().invalidatePage(va);
            break;
          }
          default: { // reads: populate this CPU's TLB
            if (!mapped[page])
                break;
            uint64_t v = 0;
            EXPECT_TRUE(rig.kmem.kread(
                va + rng.nextBounded(hw::pageSize / 8) * 8, 8, v));
            break;
          }
        }

        rig.assertNoStaleFreeTranslations(op);
    }

    // The storm must actually have exercised cross-CPU shootdowns.
    EXPECT_GT(rig.ctx.stats().get("sva.remote_invlpgs"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpShootdownStorm,
                         ::testing::Values(1, 2, 3, 4));

/** Retype backstop: a hand-built stale TLB entry (unreachable through
 *  correct intrinsic sequences) makes the VM refuse Free -> Ghost until
 *  the stale translation is shot down. */
TEST(Smp, RetypeRefusedWhileStaleTlbEntrySurvives)
{
    SmpRig rig(2);
    sva::SvaError err;

    hw::Frame f = rig.freeFrames.front();
    rig.freeFrames.pop_front();
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, f, true, true, true, &err));

    // CPU 1 caches the translation.
    rig.ctx.setActiveCpu(1);
    auto r = rig.cpus[1].mmu().translate(kUserVa, hw::Access::Read,
                                         hw::Privilege::User);
    ASSERT_TRUE(r.ok);

    // Hand-corrupt VM state to fake a missed shootdown: clear the PTE
    // and the frame-type entry behind the intrinsics' back, leaving
    // CPU 1's TLB entry stale. (unmapPage would have invalidated it.)
    hw::Paddr slot =
        62 * hw::pageSize + hw::ptIndex(kUserVa, hw::PtLevel::L1) * 8;
    rig.mem.write64(slot, 0);
    rig.vm.frames()[f].mapCount = 0;
    rig.vm.frames()[f].type = sva::FrameType::Free;

    // Retyping the frame to Ghost must be refused from any CPU.
    rig.freeFrames.push_front(f);
    rig.ctx.setActiveCpu(0);
    EXPECT_FALSE(
        rig.vm.allocGhostMemory(1, 0, hw::ghostBase, 1, &err));
    EXPECT_NE(err.message.find("stale TLB"), std::string::npos)
        << err.message;

    // Shooting the stale entry down lifts the refusal.
    rig.cpus[1].mmu().invalidatePage(kUserVa);
    rig.freeFrames.push_front(f);
    EXPECT_TRUE(rig.vm.allocGhostMemory(1, 0, hw::ghostBase, 1, &err))
        << err.message;
}

// --------------------------------------------------------------------
// 4. Per-CPU SVA state: liveCpu guard, IC migration, Kmem cache.
// --------------------------------------------------------------------

/** sva.icontext.save/load refuse to manipulate a thread whose register
 *  state is live in another vCPU's register file (the double-save/load
 *  race); parkRemoteThread clears the hazard. */
TEST(Smp, IcontextSaveLoadRefusedWhileLiveOnOtherCpu)
{
    SmpRig rig(2);
    sva::SvaError err;
    rig.vm.registerKernelEntry(0xffffff8000100000ull);
    sva::SvaThread *t =
        rig.vm.newThread(1, 0xffffff8000100000ull, 0, &err);
    ASSERT_NE(t, nullptr);

    // Thread runs user code on CPU 0.
    rig.ctx.setActiveCpu(0);
    rig.vm.syscallEnter(t->id);
    rig.vm.syscallExit(t->id); // live on cpu0
    EXPECT_EQ(t->liveCpu, 0);

    // Another CPU may not save or load its IC while it is live there.
    rig.ctx.setActiveCpu(1);
    EXPECT_FALSE(rig.vm.icontextSave(t->id, &err));
    EXPECT_NE(err.message.find("live on cpu0"), std::string::npos)
        << err.message;
    EXPECT_FALSE(rig.vm.icontextLoad(t->id, &err));

    // Parking the thread (IPI to cpu0) makes the IC authoritative.
    rig.vm.parkRemoteThread(t->id);
    EXPECT_EQ(t->liveCpu, -1);
    EXPECT_TRUE(rig.vm.icontextSave(t->id, &err)) << err.message;
    EXPECT_TRUE(rig.vm.icontextLoad(t->id, &err)) << err.message;
    EXPECT_GT(rig.ctx.stats().get("sva.remote_parks"), 0u);

    // Double-load race tail: a second load with no matching save is
    // refused (empty per-thread saved-IC stack).
    EXPECT_FALSE(rig.vm.icontextLoad(t->id, &err));
}

/** IC save/restore across involuntary preemption: a thread that traps
 *  on CPU 0 and resumes on CPU 1 sees identical registers, and the
 *  kernel-visible register file is scrubbed in between. */
TEST(Smp, InterruptContextMigratesIntactAcrossCpus)
{
    SmpRig rig(2);
    sva::SvaError err;
    rig.vm.registerKernelEntry(0xffffff8000100000ull);
    sva::SvaThread *t =
        rig.vm.newThread(1, 0xffffff8000100000ull, 0, &err);
    ASSERT_NE(t, nullptr);

    std::array<uint64_t, 16> pattern;
    for (unsigned i = 0; i < pattern.size(); i++)
        pattern[i] = 0x1000 + 7 * i;
    t->ic.regs = pattern;
    t->ic.pc = 0xabcd00;
    t->ic.sp = 0x7fffffff0000ull;

    // Trap into the kernel on CPU 0: the gate saves the IC and scrubs
    // the registers the kernel could observe.
    rig.ctx.setActiveCpu(0);
    rig.cpus[0].regs = pattern; // user state visible pre-trap
    rig.vm.syscallEnter(t->id);
    for (uint64_t r : rig.cpus[0].regs)
        EXPECT_EQ(r, 0u) << "kernel observed unzeroed register";
    EXPECT_EQ(rig.cpus[0].pc, 0u);
    EXPECT_EQ(rig.cpus[0].sp, 0u);

    // The scheduler resumes the thread on CPU 1.
    rig.ctx.setActiveCpu(1);
    rig.vm.noteDispatch(t->id);
    rig.vm.syscallExit(t->id);
    EXPECT_EQ(rig.cpus[1].regs, pattern);
    EXPECT_EQ(rig.cpus[1].pc, 0xabcd00u);
    EXPECT_EQ(rig.cpus[1].sp, 0x7fffffff0000ull);
    EXPECT_EQ(t->liveCpu, 1);
}

/** The per-CPU saved-IC pools are bounded and slots travel home even
 *  when a thread saves on one CPU and loads on another. */
TEST(Smp, SavedIcPoolSlotsReturnToOwningCpu)
{
    SmpRig rig(2);
    sva::SvaError err;
    rig.vm.registerKernelEntry(0xffffff8000100000ull);
    sva::SvaThread *t =
        rig.vm.newThread(1, 0xffffff8000100000ull, 0, &err);
    ASSERT_NE(t, nullptr);

    rig.ctx.setActiveCpu(0);
    ASSERT_TRUE(rig.vm.icontextSave(t->id, &err));
    EXPECT_EQ(rig.vm.vmState(0).savedIcInUse, 1u);
    EXPECT_EQ(rig.vm.vmState(1).savedIcInUse, 0u);

    // Load from the other CPU: the slot returns to CPU 0's pool.
    rig.ctx.setActiveCpu(1);
    ASSERT_TRUE(rig.vm.icontextLoad(t->id, &err));
    EXPECT_EQ(rig.vm.vmState(0).savedIcInUse, 0u);
    EXPECT_EQ(rig.vm.vmState(1).savedIcInUse, 0u);

    // Exhaustion refuses further saves on that CPU only.
    rig.ctx.setActiveCpu(0);
    for (uint64_t i = 0; i < sva::VmState::savedIcPoolSize; i++)
        ASSERT_TRUE(rig.vm.icontextSave(t->id, &err)) << i;
    EXPECT_FALSE(rig.vm.icontextSave(t->id, &err));
    EXPECT_NE(err.message.find("pool exhausted"), std::string::npos);
    rig.ctx.setActiveCpu(1);
    EXPECT_TRUE(rig.vm.icontextSave(t->id, &err)) << err.message;
}

/** Kmem's last-translation cache must die on *remote* shootdowns: a
 *  fill on CPU 0 may not serve a stale ghost translation after CPU 1
 *  remaps the page. */
TEST(Smp, KmemCacheInvalidatedByRemoteShootdown)
{
    SmpRig rig(2);
    sva::SvaError err;

    hw::Frame f1 = rig.freeFrames.front();
    rig.freeFrames.pop_front();
    hw::Frame f2 = rig.freeFrames.front();
    rig.freeFrames.pop_front();
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, f1, true, true, true, &err));
    rig.mem.write64(f1 * hw::pageSize, 0x1111);
    rig.mem.write64(f2 * hw::pageSize, 0x2222);

    // CPU 0 fills TLB + Kmem cache.
    rig.ctx.setActiveCpu(0);
    uint64_t v = 0;
    ASSERT_TRUE(rig.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x1111u);
    ASSERT_TRUE(rig.kmem.kread(kUserVa, 8, v)); // cached hit
    uint64_t hits = rig.ctx.stats().get("mmu.tlb_hits");
    EXPECT_GT(hits, 0u);

    // CPU 1 remaps the page: the shootdown reaches CPU 0's TLB and
    // generation counter, so CPU 0's next read walks and sees f2.
    rig.ctx.setActiveCpu(1);
    ASSERT_TRUE(rig.vm.unmapPage(0, kUserVa, &err)) << err.message;
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, f2, true, true, true, &err));

    rig.ctx.setActiveCpu(0);
    ASSERT_TRUE(rig.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(v, 0x2222u) << "stale translation served from cache";

    // The cache is also per-CPU keyed: CPU 1 filling it must not let
    // CPU 0 hit on CPU 1's generation.
    rig.ctx.setActiveCpu(1);
    ASSERT_TRUE(rig.kmem.kread(kUserVa, 8, v));
    rig.ctx.setActiveCpu(0);
    // Drop CPU 0's hardware TLB entry so the only way to skip the walk
    // would be a (wrongly shared) software-cache hit.
    rig.cpus[0].mmu().invalidatePage(kUserVa);
    uint64_t misses_before = rig.ctx.stats().get("mmu.tlb_misses");
    ASSERT_TRUE(rig.kmem.kread(kUserVa, 8, v));
    EXPECT_EQ(rig.ctx.stats().get("mmu.tlb_misses"),
              misses_before + 1)
        << "CPU 0 hit on a cache entry owned by CPU 1";
}

// --------------------------------------------------------------------
// 5. Per-CPU stat namespaces with exact rollups.
// --------------------------------------------------------------------

TEST(Smp, PerCpuCountersSumToRollup)
{
    System sys(smpConfig(2));
    sys.boot();
    for (int p = 0; p < 2; p++) {
        sys.kernel().spawn("s" + std::to_string(p), [](UserApi &api) {
            hw::Vaddr va = api.mmap(8 * hw::pageSize);
            for (int i = 0; i < 8; i++)
                api.poke(va + uint64_t(i) * hw::pageSize, 8,
                         uint64_t(i));
            int fd = api.open("/f" + std::to_string(api.pid()), true);
            api.write(fd, va, 4 * hw::pageSize);
            api.close(fd);
            api.compute(500000);
            return 0;
        });
    }
    sys.kernel().run();

    const auto &stats = sys.ctx().stats();
    for (const char *name :
         {"mmu.tlb_hits", "mmu.tlb_misses", "kernel.insts",
          "user.insts", "sva.syscalls", "sva.context_switches"}) {
        uint64_t rollup = stats.get(name);
        uint64_t sum = stats.get(std::string("cpu0.") + name) +
                       stats.get(std::string("cpu1.") + name);
        EXPECT_EQ(sum, rollup) << name;
        EXPECT_GT(rollup, 0u) << name;
    }
}
