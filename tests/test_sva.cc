/**
 * @file
 * Virtual Ghost VM tests: MMU intrinsic checks, ghost memory, secure
 * swap, Interrupt Context operations, key management, translator
 * integration.
 */

#include <gtest/gtest.h>

#include <deque>

#include "sva/vm.hh"

using namespace vg;
using namespace vg::sva;

namespace
{

constexpr uint64_t kFrames = 256;

struct Rig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    SvaVm vm;
    std::deque<hw::Frame> freeList;

    explicit Rig(sim::VgConfig cfg = sim::VgConfig::full())
        : ctx(cfg), mem(kFrames), mmu(mem, ctx), iommu(mem, ctx),
          tpm({'r', 'i', 'g'}), vm(ctx, mem, mmu, iommu, tpm)
    {
        // Frames 0..15 reserved (root etc. handed out manually);
        // 16..255 to the "OS allocator".
        for (hw::Frame f = 16; f < kFrames; f++)
            freeList.push_back(f);
        vm.setFrameProvider([this]() -> std::optional<hw::Frame> {
            if (freeList.empty())
                return std::nullopt;
            hw::Frame f = freeList.front();
            freeList.pop_front();
            return f;
        });
        vm.setFrameReceiver([this](hw::Frame f) {
            freeList.push_back(f);
        });
        vm.install(384); // small keys: tests stay fast
        vm.boot();
    }

    /** Declare a full table chain for @p va under root frame 0. */
    void
    buildChain(hw::Vaddr va)
    {
        SvaError err;
        if (vm.frames()[0].type != FrameType::PageTable)
            ASSERT_TRUE(vm.declarePtPage(0, 4, &err)) << err.message;
        ASSERT_TRUE(vm.declarePtPage(1, 3, &err)) << err.message;
        ASSERT_TRUE(vm.declarePtPage(2, 2, &err)) << err.message;
        ASSERT_TRUE(vm.declarePtPage(3, 1, &err)) << err.message;
        ASSERT_TRUE(vm.installTable(0, 4, va, 1, &err)) << err.message;
        ASSERT_TRUE(vm.installTable(1, 3, va, 2, &err)) << err.message;
        ASSERT_TRUE(vm.installTable(2, 2, va, 3, &err)) << err.message;
    }
};

constexpr hw::Vaddr kUserVa = 0x0000000040000000ull;

} // namespace

// --------------------------------------------------------------------
// MMU intrinsics
// --------------------------------------------------------------------

TEST(SvaMmu, DeclareRejectsBusyFrame)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    EXPECT_FALSE(rig.vm.declarePtPage(0, 4, &err)); // already a PT
    EXPECT_FALSE(rig.vm.declarePtPage(9999, 1, &err)); // bad frame
    EXPECT_FALSE(rig.vm.declarePtPage(5, 0, &err));    // bad level
    EXPECT_GE(rig.vm.violationCount(), 3u);
}

TEST(SvaMmu, MapAndTranslate)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, 20, true, true, true, &err))
        << err.message;
    ASSERT_TRUE(rig.vm.loadRoot(0, &err)) << err.message;

    auto r = rig.mmu.translate(kUserVa + 5, hw::Access::Read,
                               hw::Privilege::User);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.paddr, 20 * hw::pageSize + 5);
    EXPECT_EQ(rig.vm.frames()[20].type, FrameType::Data);
    EXPECT_EQ(rig.vm.frames()[20].mapCount, 1u);
}

TEST(SvaMmu, RejectsGhostVirtualAddresses)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    EXPECT_FALSE(rig.vm.mapPage(0, hw::ghostBase, 20, true, true, true,
                                &err));
    EXPECT_NE(err.message.find("ghost"), std::string::npos);
    EXPECT_FALSE(rig.vm.unmapPage(0, hw::ghostBase, &err));
    EXPECT_FALSE(rig.vm.installTable(0, 4, hw::ghostBase, 1, &err));
}

TEST(SvaMmu, RejectsMappingGhostFrames)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    // Make frame 30 a ghost frame by allocating ghost memory with a
    // provider that returns it.
    rig.freeList.clear();
    rig.freeList.push_back(30);
    for (hw::Frame f = 31; f < 40; f++)
        rig.freeList.push_back(f);
    ASSERT_TRUE(rig.vm.allocGhostMemory(1, 0, hw::ghostBase, 1, &err))
        << err.message;
    ASSERT_EQ(rig.vm.frames()[30].type, FrameType::Ghost);

    // The OS now tries to map that frame into user space.
    EXPECT_FALSE(rig.vm.mapPage(0, kUserVa, 30, true, true, true, &err));
    EXPECT_NE(err.message.find("ghost"), std::string::npos);
}

TEST(SvaMmu, RejectsMappingPageTableAndSvaFrames)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    EXPECT_FALSE(rig.vm.mapPage(0, kUserVa, 1, true, true, true, &err));
    rig.vm.reserveSvaFrame(50);
    EXPECT_FALSE(rig.vm.mapPage(0, kUserVa, 50, true, true, true, &err));
}

TEST(SvaMmu, CodePagesNeverWritable)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    rig.vm.frames()[40].type = FrameType::Code;

    EXPECT_FALSE(rig.vm.mapPage(0, kUserVa, 40, true, true, false,
                                &err));
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, 40, false, true, false,
                               &err))
        << err.message;
    // Cannot upgrade to writable afterwards.
    EXPECT_FALSE(rig.vm.protectPage(0, kUserVa, true, false, &err));
    // Cannot redirect the code mapping to another frame.
    EXPECT_FALSE(rig.vm.mapPage(0, kUserVa, 41, false, true, false,
                                &err));
}

TEST(SvaMmu, UnmapAndRefcounts)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, 20, true, true, true, &err));
    ASSERT_TRUE(rig.vm.unmapPage(0, kUserVa, &err)) << err.message;
    EXPECT_EQ(rig.vm.frames()[20].mapCount, 0u);
    EXPECT_EQ(rig.vm.frames()[20].type, FrameType::Free);
    EXPECT_FALSE(rig.vm.unmapPage(0, kUserVa, &err)); // double unmap
}

TEST(SvaMmu, UndeclareRequiresEmptyTable)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    // L1 (frame 3) currently empty: can be retired after unlinking —
    // we retire an unlinked empty table (frame 4).
    ASSERT_TRUE(rig.vm.declarePtPage(4, 1, &err));
    EXPECT_TRUE(rig.vm.undeclarePtPage(4, &err)) << err.message;

    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, 20, true, true, true, &err));
    EXPECT_FALSE(rig.vm.undeclarePtPage(3, &err)); // live entry
}

TEST(SvaMmu, LoadRootChecked)
{
    Rig rig;
    SvaError err;
    EXPECT_FALSE(rig.vm.loadRoot(7, &err)); // not declared
    ASSERT_TRUE(rig.vm.declarePtPage(7, 3, &err));
    EXPECT_FALSE(rig.vm.loadRoot(7, &err)); // wrong level
    ASSERT_TRUE(rig.vm.declarePtPage(8, 4, &err));
    EXPECT_TRUE(rig.vm.loadRoot(8, &err)) << err.message;
    EXPECT_EQ(rig.mmu.root(), 8 * hw::pageSize);
}

TEST(SvaMmu, NativeConfigSkipsGhostChecks)
{
    Rig rig((sim::VgConfig::native()));
    rig.buildChain(hw::ghostBase + 0x1000);
    SvaError err;
    // Without mmuChecks the OS can map ghost VAs (that's the attack
    // surface the baseline has).
    EXPECT_TRUE(rig.vm.mapPage(0, hw::ghostBase + 0x1000, 20, true,
                               true, true, &err))
        << err.message;
}

// --------------------------------------------------------------------
// Ghost memory
// --------------------------------------------------------------------

TEST(SvaGhost, AllocZeroesTypesAndMaps)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));

    // Dirty the frame that will be handed out.
    hw::Frame next = rig.freeList.front();
    rig.mem.write64(next * hw::pageSize, 0xdeadbeef);

    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase + 0x10000,
                                        4, &err))
        << err.message;
    EXPECT_EQ(rig.vm.ghostPageCount(7), 4u);
    EXPECT_EQ(rig.mem.read64(next * hw::pageSize), 0u); // zeroed
    EXPECT_EQ(rig.vm.frames()[next].type, FrameType::Ghost);
    EXPECT_EQ(rig.vm.frames()[next].owner, 7u);
    EXPECT_FALSE(rig.iommu.dmaAllowed(next));

    // Mapped in the tree.
    rig.vm.loadRoot(0, &err);
    auto pte = rig.mmu.probe(hw::ghostBase + 0x10000);
    ASSERT_TRUE(pte.has_value());
}

TEST(SvaGhost, AllocRejectsBadRanges)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    EXPECT_FALSE(rig.vm.allocGhostMemory(1, 0, kUserVa, 1, &err));
    EXPECT_FALSE(rig.vm.allocGhostMemory(1, 0, hw::ghostBase + 1, 1,
                                         &err)); // unaligned
    EXPECT_FALSE(rig.vm.allocGhostMemory(1, 0, hw::ghostBase, 0, &err));
    EXPECT_FALSE(rig.vm.allocGhostMemory(
        1, 0, hw::ghostEnd - hw::pageSize, 2, &err)); // runs out
}

TEST(SvaGhost, AllocRejectsStillMappedFrame)
{
    Rig rig;
    rig.buildChain(kUserVa);
    SvaError err;
    // Map frame 16 into user space, then offer it for ghost use.
    ASSERT_TRUE(rig.vm.mapPage(0, kUserVa, 16, true, true, true, &err));
    rig.freeList.clear();
    rig.freeList.push_back(16);
    EXPECT_FALSE(rig.vm.allocGhostMemory(1, 0, hw::ghostBase, 1, &err));
}

TEST(SvaGhost, FreeScrubsAndReturns)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 1, &err));

    // Find the ghost frame and write a secret into it.
    hw::Frame ghost_frame = 0;
    for (hw::Frame f = 0; f < kFrames; f++) {
        if (rig.vm.frames()[f].type == FrameType::Ghost)
            ghost_frame = f;
    }
    ASSERT_NE(ghost_frame, 0u);
    rig.mem.write64(ghost_frame * hw::pageSize, 0x5ec2e7);

    size_t free_before = rig.freeList.size();
    ASSERT_TRUE(rig.vm.freeGhostMemory(7, 0, hw::ghostBase, 1, &err))
        << err.message;
    EXPECT_EQ(rig.mem.read64(ghost_frame * hw::pageSize), 0u);
    EXPECT_EQ(rig.vm.frames()[ghost_frame].type, FrameType::Free);
    EXPECT_EQ(rig.freeList.size(), free_before + 1);
    EXPECT_TRUE(rig.iommu.dmaAllowed(ghost_frame));
    EXPECT_EQ(rig.vm.ghostPageCount(7), 0u);
}

TEST(SvaGhost, FreeRejectsWrongOwner)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 1, &err));
    EXPECT_FALSE(rig.vm.freeGhostMemory(8, 0, hw::ghostBase, 1, &err));
}

TEST(SvaGhost, SwapRoundtrip)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 1, &err));
    rig.vm.loadRoot(0, &err);

    // Write through the mapping.
    auto pte = rig.mmu.probe(hw::ghostBase);
    ASSERT_TRUE(pte.has_value());
    hw::Frame f = hw::pte::frameNum(*pte);
    rig.mem.write64(f * hw::pageSize + 64, 0xabcdef12345ull);

    auto blob = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err);
    ASSERT_TRUE(blob.has_value()) << err.message;
    EXPECT_FALSE(rig.mmu.probe(hw::ghostBase).has_value());
    // The OS sees only ciphertext.
    EXPECT_EQ(rig.vm.ghostPageCount(7), 0u);

    ASSERT_TRUE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                       &err))
        << err.message;
    auto pte2 = rig.mmu.probe(hw::ghostBase);
    ASSERT_TRUE(pte2.has_value());
    hw::Frame f2 = hw::pte::frameNum(*pte2);
    EXPECT_EQ(rig.mem.read64(f2 * hw::pageSize + 64), 0xabcdef12345ull);
}

TEST(SvaGhost, SwapInDetectsTampering)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 1, &err));
    auto blob = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err);
    ASSERT_TRUE(blob.has_value());
    blob->ciphertext[100] ^= 1;
    EXPECT_FALSE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                        &err));
}

TEST(SvaGhost, SwapInRejectsReplayToWrongSlot)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 2, &err));
    auto blob = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err);
    ASSERT_TRUE(blob.has_value());
    // Wrong va.
    EXPECT_FALSE(rig.vm.swapInGhostPage(
        7, 0, hw::ghostBase + hw::pageSize, *blob, &err));
    // Wrong pid.
    EXPECT_FALSE(rig.vm.swapInGhostPage(8, 0, hw::ghostBase, *blob,
                                        &err));
    // Right slot works.
    EXPECT_TRUE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                       &err))
        << err.message;
}

TEST(SvaGhost, SealKeyCacheRotatesWithKeyChain)
{
    // swapKey() is derived lazily and cached; install()/boot() rotate
    // the key chain and must invalidate the cache, so blobs sealed
    // under the old key are rejected and new seals use the new key.
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 3, &err));

    // First seal derives and caches the swap key...
    EXPECT_EQ(rig.vm.sealKeyGeneration(), 0u);
    auto b1 = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err);
    ASSERT_TRUE(b1.has_value()) << err.message;
    EXPECT_EQ(rig.vm.sealKeyGeneration(), 1u);

    // ...and further seals hit the cache (no re-derivation).
    auto b2 = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase + hw::pageSize,
                                      &err);
    ASSERT_TRUE(b2.has_value()) << err.message;
    EXPECT_EQ(rig.vm.sealKeyGeneration(), 1u);

    // Rotate the key chain: a fresh private key is installed and the
    // cached swap key must go with it.
    rig.vm.install(384);
    rig.vm.boot();

    // Blobs sealed under the old key fail verification now.
    EXPECT_FALSE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *b1, &err));
    EXPECT_FALSE(rig.vm.swapInGhostPage(
        7, 0, hw::ghostBase + hw::pageSize, *b2, &err));
    // The failed attempts re-derived the key from the new chain.
    EXPECT_EQ(rig.vm.sealKeyGeneration(), 2u);

    // New swaps under the rotated key round-trip as usual.
    hw::Vaddr fresh = hw::ghostBase + 2 * hw::pageSize;
    auto b3 = rig.vm.swapOutGhostPage(7, 0, fresh, &err);
    ASSERT_TRUE(b3.has_value()) << err.message;
    EXPECT_TRUE(rig.vm.swapInGhostPage(7, 0, fresh, *b3, &err))
        << err.message;
    EXPECT_EQ(rig.vm.sealKeyGeneration(), 2u);
}

TEST(SvaGhost, SwapInRequiresGenerationRecord)
{
    // A blob for a slot the VM never swapped out (or already swapped
    // back in) is refused before any crypto runs: there is no trusted
    // generation to bind the MAC to.
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 1, &err));
    auto blob = rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err);
    ASSERT_TRUE(blob.has_value());
    ASSERT_TRUE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                       &err));

    // The record was retired by the successful swap-in: replaying the
    // same (perfectly valid-looking) blob is refused before any
    // crypto runs.
    EXPECT_FALSE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                        &err));
    EXPECT_NE(err.message.find("no swapped page"), std::string::npos);

    // After the page cycles out again the slot has a newer generation,
    // so the stale blob now fails its MAC.
    ASSERT_TRUE(rig.vm.swapOutGhostPage(7, 0, hw::ghostBase, &err)
                    .has_value());
    EXPECT_FALSE(rig.vm.swapInGhostPage(7, 0, hw::ghostBase, *blob,
                                        &err));
    EXPECT_NE(err.message.find("verification"), std::string::npos);
}

TEST(SvaGhost, ReleaseFreesEverything)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    ASSERT_TRUE(rig.vm.allocGhostMemory(7, 0, hw::ghostBase, 8, &err));
    EXPECT_EQ(rig.vm.ghostPageCount(7), 8u);
    rig.vm.releaseGhostMemory(7, 0);
    EXPECT_EQ(rig.vm.ghostPageCount(7), 0u);
    EXPECT_EQ(rig.vm.frames().count(FrameType::Ghost), 0u);
}

// --------------------------------------------------------------------
// Threads / Interrupt Contexts
// --------------------------------------------------------------------

TEST(SvaThreads, NewStateValidatesKernelEntry)
{
    Rig rig;
    SvaError err;
    EXPECT_EQ(rig.vm.newThread(1, 0xbad, 0, &err), nullptr);
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *t = rig.vm.newThread(1, 0x1000, 0, &err);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->processId, 1u);
}

TEST(SvaThreads, CloneCopiesInterruptContext)
{
    Rig rig;
    SvaError err;
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *parent = rig.vm.newThread(1, 0x1000, 0, &err);
    ASSERT_NE(parent, nullptr);
    parent->ic.pc = 0x4444;
    parent->ic.regs[3] = 99;
    SvaThread *child = rig.vm.newThread(2, 0x1000, parent->id, &err);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->ic.pc, 0x4444u);
    EXPECT_EQ(child->ic.regs[3], 99u);
}

TEST(SvaThreads, IcontextSaveLoadStack)
{
    Rig rig;
    SvaError err;
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *t = rig.vm.newThread(1, 0x1000, 0, &err);
    ASSERT_NE(t, nullptr);

    t->ic.pc = 0xaaa;
    ASSERT_TRUE(rig.vm.icontextSave(t->id, &err));
    t->ic.pc = 0xbbb; // signal handler running
    ASSERT_TRUE(rig.vm.icontextLoad(t->id, &err));
    EXPECT_EQ(t->ic.pc, 0xaaau);
    EXPECT_FALSE(rig.vm.icontextLoad(t->id, &err)); // stack empty
}

TEST(SvaThreads, IpushRequiresPermittedFunction)
{
    Rig rig;
    SvaError err;
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *t = rig.vm.newThread(1, 0x1000, 0, &err);
    ASSERT_NE(t, nullptr);

    // The exploit path: kernel pushes unregistered "code".
    EXPECT_FALSE(rig.vm.ipushFunction(t->id, 0xdead, 0, &err));
    EXPECT_TRUE(t->pushedCalls.empty());

    // Legitimate path after sva.permitFunction.
    rig.vm.permitFunction(1, 0x7777);
    ASSERT_TRUE(rig.vm.ipushFunction(t->id, 0x7777, 14, &err))
        << err.message;
    ASSERT_EQ(t->pushedCalls.size(), 1u);
    EXPECT_EQ(t->pushedCalls[0].handler, 0x7777u);
    EXPECT_EQ(t->pushedCalls[0].arg, 14u);
}

TEST(SvaThreads, ReinitClearsStateAndGhost)
{
    Rig rig;
    SvaError err;
    ASSERT_TRUE(rig.vm.declarePtPage(0, 4, &err));
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *t = rig.vm.newThread(5, 0x1000, 0, &err);
    ASSERT_NE(t, nullptr);
    ASSERT_TRUE(rig.vm.allocGhostMemory(5, 0, hw::ghostBase, 2, &err));
    rig.vm.permitFunction(5, 0x7777);
    rig.vm.ipushFunction(t->id, 0x7777, 0, &err);

    ASSERT_TRUE(rig.vm.reinitIcontext(t->id, 0x400000, 0x7ff000, 0,
                                      &err));
    EXPECT_EQ(t->ic.pc, 0x400000u);
    EXPECT_TRUE(t->pushedCalls.empty());
    EXPECT_EQ(rig.vm.ghostPageCount(5), 0u);
    // Old registrations are gone.
    EXPECT_FALSE(rig.vm.ipushFunction(t->id, 0x7777, 0, &err));
}

TEST(SvaThreads, SyscallGateChargesAndMarks)
{
    Rig rig;
    SvaError err;
    rig.vm.registerKernelEntry(0x1000);
    SvaThread *t = rig.vm.newThread(1, 0x1000, 0, &err);
    sim::Cycles before = rig.ctx.clock().now();
    rig.vm.syscallEnter(t->id);
    rig.vm.syscallExit(t->id);
    EXPECT_GT(rig.ctx.clock().now(), before);
    EXPECT_EQ(rig.ctx.stats().get("sva.syscalls"), 1u);
}

// --------------------------------------------------------------------
// Keys
// --------------------------------------------------------------------

TEST(SvaKeys, PackageValidateBindGetKey)
{
    Rig rig;
    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i * 3);

    AppBinary binary = rig.vm.packageApp("ssh", "sshcode-v1", app_key);
    SvaError err;
    EXPECT_TRUE(rig.vm.validateAppBinary(binary, &err)) << err.message;
    ASSERT_TRUE(rig.vm.bindProcessToApp(42, binary, &err))
        << err.message;

    auto got = rig.vm.getKey(42);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, app_key);

    EXPECT_FALSE(rig.vm.getKey(43).has_value());
    rig.vm.unbindProcess(42);
    EXPECT_FALSE(rig.vm.getKey(42).has_value());
}

TEST(SvaKeys, TamperedBinaryRefused)
{
    Rig rig;
    crypto::AesKey app_key{};
    AppBinary binary = rig.vm.packageApp("agent", "agentcode", app_key);
    SvaError err;

    AppBinary wrong_code = binary;
    wrong_code.codeIdentity = "evil-code";
    EXPECT_FALSE(rig.vm.validateAppBinary(wrong_code, &err));

    AppBinary wrong_key = binary;
    wrong_key.keySection[5] ^= 1;
    EXPECT_FALSE(rig.vm.validateAppBinary(wrong_key, &err));
    EXPECT_FALSE(rig.vm.bindProcessToApp(1, wrong_key, &err));

    AppBinary wrong_sig = binary;
    wrong_sig.signature[5] ^= 1;
    EXPECT_FALSE(rig.vm.validateAppBinary(wrong_sig, &err));
}

TEST(SvaKeys, KeySectionIsNotPlaintext)
{
    Rig rig;
    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(0x40 + i);
    AppBinary binary = rig.vm.packageApp("a", "c", app_key);
    // The OS reading the binary must not find the key bytes.
    std::string section(binary.keySection.begin(),
                        binary.keySection.end());
    std::string key_str(app_key.begin(), app_key.end());
    EXPECT_EQ(section.find(key_str), std::string::npos);
}

// --------------------------------------------------------------------
// Randomness + translator
// --------------------------------------------------------------------

TEST(SvaRandom, FillsAndCharges)
{
    Rig rig;
    uint8_t buf[64] = {0};
    sim::Cycles before = rig.ctx.clock().now();
    rig.vm.secureRandom(buf, sizeof(buf));
    EXPECT_GT(rig.ctx.clock().now(), before);
    bool any_nonzero = false;
    for (uint8_t b : buf)
        any_nonzero |= b != 0;
    EXPECT_TRUE(any_nonzero);
}

TEST(SvaTranslate, ModulesGetDisjointCodeRegions)
{
    Rig rig;
    auto t1 = rig.vm.translateKernelModule(
        "func @a(0) {\nentry:\n  %0 = const 1\n  ret %0\n}\n");
    auto t2 = rig.vm.translateKernelModule(
        "func @b(0) {\nentry:\n  %0 = const 2\n  ret %0\n}\n");
    ASSERT_TRUE(t1.ok && t2.ok);
    EXPECT_GE(t2.image->codeBase, t1.image->codeEnd());
    EXPECT_TRUE(rig.vm.verifyImage(*t1.image));
    EXPECT_TRUE(rig.vm.verifyImage(*t2.image));
}

TEST(SvaTranslate, TamperedImageRefused)
{
    Rig rig;
    auto t = rig.vm.translateKernelModule(
        "func @a(0) {\nentry:\n  %0 = const 1\n  ret %0\n}\n");
    ASSERT_TRUE(t.ok);
    cc::MachineImage tampered = *t.image;
    tampered.code[1].imm = 0x666;
    EXPECT_FALSE(rig.vm.verifyImage(tampered));
}
