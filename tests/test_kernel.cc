/**
 * @file
 * Kernel integration tests: processes, syscalls, fork/exec/wait,
 * signals via SVA, sockets, ghost memory and module interposition.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

SystemConfig
smallConfig(sim::VgConfig vg = sim::VgConfig::full())
{
    SystemConfig cfg;
    cfg.vg = vg;
    cfg.memFrames = 4096;  // 16 MB
    cfg.diskBlocks = 4096; // 16 MB
    cfg.rsaBits = 384;
    return cfg;
}

} // namespace

TEST(Kernel, TrivialProcessRuns)
{
    System sys(smallConfig());
    sys.boot();
    int code = sys.runProcess("init", [](UserApi &api) {
        EXPECT_GT(api.getpid(), 0);
        return 42;
    });
    EXPECT_EQ(code, 42);
}

TEST(Kernel, FileSyscallsThroughUserMemory)
{
    System sys(smallConfig());
    sys.boot();
    int code = sys.runProcess("filer", [](UserApi &api) {
        int fd = api.open("/test.txt", true);
        if (fd < 0)
            return 1;

        hw::Vaddr buf = api.mmap(4096);
        const char *msg = "ghost data";
        if (!api.copyToUser(buf, msg, 10))
            return 2;
        if (api.write(fd, buf, 10) != 10)
            return 3;
        if (api.lseek(fd, 0, 0) != 0)
            return 4;

        hw::Vaddr buf2 = api.mmap(4096);
        if (api.read(fd, buf2, 10) != 10)
            return 5;
        char back[16] = {};
        if (!api.copyFromUser(buf2, back, 10))
            return 6;
        if (std::memcmp(back, msg, 10) != 0)
            return 7;

        FileStat st;
        if (api.stat("/test.txt", st) != 0 || st.size != 10)
            return 8;
        if (api.close(fd) != 0)
            return 9;
        if (api.unlink("/test.txt") != 0)
            return 10;
        return 0;
    });
    EXPECT_EQ(code, 0);
}

TEST(Kernel, MmapDemandZeroAndPageFaults)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("pf", [&](UserApi &api) {
        hw::Vaddr va = api.mmap(8 * 4096);
        EXPECT_NE(va, 0u);
        uint64_t before = sys.ctx().stats().get("kernel.page_faults");
        uint64_t v = 1;
        EXPECT_TRUE(api.peek(va, 8, v));
        EXPECT_EQ(v, 0u); // demand-zero
        EXPECT_TRUE(api.poke(va, 8, 0x1234));
        EXPECT_TRUE(api.peek(va, 8, v));
        EXPECT_EQ(v, 0x1234u);
        uint64_t after = sys.ctx().stats().get("kernel.page_faults");
        EXPECT_EQ(after, before + 1); // one page touched once
        // Touch the rest.
        for (int i = 1; i < 8; i++)
            api.poke(va + uint64_t(i) * 4096, 8, uint64_t(i));
        EXPECT_EQ(sys.ctx().stats().get("kernel.page_faults"),
                  before + 8);
        EXPECT_EQ(api.munmap(va, 8 * 4096), 0);
        return 0;
    });
}

TEST(Kernel, ForkCopiesMemoryAndWaitReturnsStatus)
{
    System sys(smallConfig());
    sys.boot();
    int code = sys.runProcess("parent", [](UserApi &api) {
        hw::Vaddr shared = api.mmap(4096);
        api.poke(shared, 8, 111);

        uint64_t child = api.fork([shared](UserApi &capi) {
            uint64_t v = 0;
            capi.peek(shared, 8, v);
            if (v != 111)
                return 50; // fork must copy parent memory
            capi.poke(shared, 8, 222);
            return 7;
        });
        int status = 0;
        if (api.waitpid(child, status) != 0)
            return 1;
        if (status != 7)
            return 2;
        uint64_t v = 0;
        api.peek(shared, 8, v);
        // Child wrote its own copy; the parent's page is unchanged.
        if (v != 111)
            return 3;
        return 0;
    });
    EXPECT_EQ(code, 0);
}

TEST(Kernel, ExecveReplacesImage)
{
    System sys(smallConfig());
    sys.boot();
    int code = sys.runProcess("execer", [](UserApi &api) {
        hw::Vaddr old_map = api.mmap(4096);
        api.poke(old_map, 8, 9);
        return api.execve(nullptr, [old_map](UserApi &napi) {
            // The old mapping is gone after exec.
            uint64_t v = 0;
            if (napi.peek(old_map, 8, v))
                return 1;
            return 99;
        });
    });
    EXPECT_EQ(code, 99);
}

TEST(Kernel, SignalsDeliverToRegisteredHandler)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("sig", [](UserApi &api) {
        int got = 0;
        api.installSignalHandler(
            10, [&](int signum) { got = signum; }, true);

        uint64_t self = api.pid();
        uint64_t child = api.fork([self](UserApi &capi) {
            capi.kill(self, 10);
            return 0;
        });
        int status = 0;
        api.waitpid(child, status);
        // Delivery happens at a syscall boundary; waitpid qualifies.
        EXPECT_EQ(got, 10);
        return 0;
    });
}

TEST(Kernel, UnhandledTermKillsProcess)
{
    System sys(smallConfig());
    sys.boot();
    int code = sys.runProcess("killer", [](UserApi &api) {
        uint64_t victim = api.fork([](UserApi &capi) {
            // Sleep forever on a select timeout loop.
            while (true)
                capi.select({}, 100000);
            return 0;
        });
        api.kill(victim, 15);
        int status = 0;
        api.waitpid(victim, status);
        return status;
    });
    EXPECT_EQ(code, 137);
}

TEST(Kernel, SocketsTransferData)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("net", [](UserApi &api) {
        uint64_t server = api.fork([](UserApi &sapi) {
            int ls = sapi.socket();
            sapi.bind(ls, 8080);
            sapi.listen(ls);
            int conn = sapi.accept(ls);
            if (conn < 0)
                return 1;
            char buf[64] = {};
            int64_t n = sapi.recvHost(conn, buf, sizeof(buf));
            if (n <= 0)
                return 2;
            // Echo back.
            sapi.sendHost(conn, buf, uint64_t(n));
            sapi.close(conn);
            sapi.close(ls);
            return 0;
        });

        api.yield(); // let the server reach listen()
        int fd = api.connect(8080);
        EXPECT_GE(fd, 0);
        const char *msg = "ping!";
        EXPECT_EQ(api.sendHost(fd, msg, 5), 5);
        char back[8] = {};
        EXPECT_EQ(api.recvHost(fd, back, sizeof(back)), 5);
        EXPECT_EQ(std::memcmp(back, msg, 5), 0);
        api.close(fd);
        int status = 0;
        api.waitpid(server, status);
        EXPECT_EQ(status, 0);
        return 0;
    });
}

TEST(Kernel, SocketEofAfterClose)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("eof", [](UserApi &api) {
        uint64_t server = api.fork([](UserApi &sapi) {
            int ls = sapi.socket();
            sapi.bind(ls, 9000);
            sapi.listen(ls);
            int conn = sapi.accept(ls);
            sapi.sendHost(conn, "x", 1);
            sapi.close(conn);
            return 0;
        });
        api.yield();
        int fd = api.connect(9000);
        char c = 0;
        EXPECT_EQ(api.recvHost(fd, &c, 1), 1);
        EXPECT_EQ(api.recvHost(fd, &c, 1), 0); // EOF
        api.close(fd);
        int status;
        api.waitpid(server, status);
        return 0;
    });
}

TEST(Kernel, LargeSocketTransferWithFlowControl)
{
    System sys(smallConfig());
    sys.boot();
    constexpr uint64_t total = 2 << 20; // 2 MB > window
    sys.runProcess("bulk", [](UserApi &api) {
        uint64_t server = api.fork([](UserApi &sapi) {
            int ls = sapi.socket();
            sapi.bind(ls, 9100);
            sapi.listen(ls);
            int conn = sapi.accept(ls);
            uint64_t received = 0;
            std::vector<char> buf(65536);
            while (received < total) {
                int64_t n = sapi.recvHost(conn, buf.data(),
                                          buf.size());
                if (n <= 0)
                    break;
                received += uint64_t(n);
            }
            sapi.close(conn);
            return received == total ? 0 : 1;
        });
        api.yield();
        int fd = api.connect(9100);
        std::vector<char> chunk(65536, 'z');
        uint64_t sent = 0;
        while (sent < total) {
            int64_t n = api.sendHost(fd, chunk.data(), chunk.size());
            EXPECT_GT(n, 0);
            if (n <= 0)
                break;
            sent += uint64_t(n);
        }
        api.close(fd);
        int status = -1;
        api.waitpid(server, status);
        EXPECT_EQ(status, 0);
        return 0;
    });
}

TEST(Kernel, SelectReportsReadiness)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("sel", [](UserApi &api) {
        int fd = api.open("/f", true);
        // Files are always ready.
        EXPECT_EQ(api.select({fd}, 0), 1);

        int ls = api.socket();
        api.bind(ls, 9200);
        api.listen(ls);
        EXPECT_EQ(api.select({ls}, 0), 0); // nothing pending

        uint64_t child = api.fork([](UserApi &capi) {
            int c = capi.connect(9200);
            capi.close(c);
            return 0;
        });
        // Block in select until the child connects.
        EXPECT_EQ(api.select({ls}, 1000000), 1);
        int status;
        api.waitpid(child, status);
        return 0;
    });
}

TEST(Kernel, GhostMemoryVisibleToAppInvisibleToKernel)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("ghosty", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(2);
        EXPECT_NE(gva, 0u);
        EXPECT_TRUE(hw::isGhostAddr(gva));

        const char *secret = "TOPSECRET";
        EXPECT_TRUE(api.ghostWrite(gva, secret, 9));
        char back[16] = {};
        EXPECT_TRUE(api.ghostRead(gva, back, 9));
        EXPECT_EQ(std::memcmp(back, secret, 9), 0);

        // The kernel's own (instrumented) accessors deflect.
        uint64_t v = 0;
        sys.kernel().kmem().kread(gva, 8, v);
        uint64_t expect;
        std::memcpy(&expect, secret, 8);
        EXPECT_NE(v, expect);
        EXPECT_GT(sys.kernel().kmem().deflections(), 0u);

        EXPECT_TRUE(api.freeGhost(gva, 2));
        return 0;
    });
}

TEST(Kernel, GhostPagesSurviveContextSwitches)
{
    System sys(smallConfig());
    sys.boot();
    sys.runProcess("ctx", [](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "abc", 3);
        uint64_t child = api.fork([](UserApi &capi) {
            // The child has its own (shared-clone) view; just burn
            // time to force context switches.
            for (int i = 0; i < 3; i++)
                capi.yield();
            return 0;
        });
        for (int i = 0; i < 3; i++)
            api.yield();
        char back[4] = {};
        EXPECT_TRUE(api.ghostRead(gva, back, 3));
        EXPECT_EQ(std::memcmp(back, "abc", 3), 0);
        int status;
        api.waitpid(child, status);
        return 0;
    });
}

TEST(Kernel, ModuleInterposesSyscall)
{
    System sys(smallConfig());
    sys.boot();

    // A benign module that chains to the native read handler.
    const char *mod = R"(
module "chainer"
func @my_read(4) {
entry:
  %4 = call @k_read_native(%0, %1, %2, %3)
  ret %4
}
)";
    std::string err;
    ASSERT_TRUE(sys.kernel().loadModule("chainer", mod, &err)) << err;
    ASSERT_TRUE(sys.kernel().interposeSyscall(Sys::read, "chainer",
                                              "my_read"));

    int code = sys.runProcess("reader", [](UserApi &api) {
        int fd = api.open("/via_module", true);
        hw::Vaddr buf = api.mmap(4096);
        api.copyToUser(buf, "hello", 5);
        api.write(fd, buf, 5);
        api.lseek(fd, 0, 0);
        hw::Vaddr buf2 = api.mmap(4096);
        if (api.read(fd, buf2, 5) != 5)
            return 1;
        char back[8] = {};
        api.copyFromUser(buf2, back, 5);
        return std::memcmp(back, "hello", 5) == 0 ? 0 : 2;
    });
    EXPECT_EQ(code, 0);
    EXPECT_GT(sys.ctx().stats().get("exec.insts"), 0u);
}

TEST(Kernel, UnsignedModuleTextRefused)
{
    System sys(smallConfig());
    sys.boot();
    std::string err;
    EXPECT_FALSE(sys.kernel().loadModule("bad", "not vir", &err));
    EXPECT_FALSE(err.empty());
}

TEST(Kernel, OsRandomIsRiggableOnlyWithoutVg)
{
    // Hostile kernel, no VG: rigged /dev/random returns constants.
    System native(smallConfig(sim::VgConfig::native()));
    native.boot();
    native.kernel().setRngRigged(true);
    native.runProcess("iago", [](UserApi &api) {
        uint8_t buf[16];
        api.osRandom(buf, sizeof(buf));
        for (uint8_t b : buf)
            EXPECT_EQ(b, 0x41);
        return 0;
    });

    // Under VG the same request is served by the trusted generator.
    System vg(smallConfig());
    vg.boot();
    vg.kernel().setRngRigged(true);
    vg.runProcess("iago2", [](UserApi &api) {
        uint8_t buf[16];
        api.osRandom(buf, sizeof(buf));
        bool all_rigged = true;
        for (uint8_t b : buf)
            all_rigged = all_rigged && b == 0x41;
        EXPECT_FALSE(all_rigged);
        return 0;
    });
}

TEST(Kernel, AppKeyRoundtripThroughExec)
{
    System sys(smallConfig());
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(0x80 + i);
    sva::AppBinary binary =
        sys.vm().packageApp("secureapp", "code-v1", app_key);

    int code = sys.runProcess("loader", [&](UserApi &api) {
        return api.execve(&binary, [&](UserApi &napi) {
            auto key = napi.getKey();
            if (!key)
                return 1;
            return *key == app_key ? 0 : 2;
        });
    });
    EXPECT_EQ(code, 0);

    // A tampered binary refuses to start.
    sva::AppBinary evil = binary;
    evil.codeIdentity = "trojan";
    int code2 = sys.runProcess("loader2", [&](UserApi &api) {
        return api.execve(&evil, [](UserApi &) { return 0; });
    });
    EXPECT_EQ(code2, -1);
}

TEST(Kernel, VgSyscallsCostMoreThanNative)
{
    auto measure = [](sim::VgConfig cfg) {
        System sys(smallConfig(cfg));
        sys.boot();
        sim::Cycles spent = 0;
        sys.runProcess("bench", [&](UserApi &api) {
            sim::Stopwatch sw(sys.ctx().clock());
            for (int i = 0; i < 100; i++)
                api.getpid();
            spent = sw.elapsed();
            return 0;
        });
        return spent;
    };
    sim::Cycles native = measure(sim::VgConfig::native());
    sim::Cycles vg = measure(sim::VgConfig::full());
    EXPECT_GT(vg, 2 * native);
}
