/**
 * @file
 * Async-I/O equivalence: the interrupt-driven ring stack
 * (VgConfig::asyncIo, the default) and the retained legacy synchronous
 * device paths must be *functionally* identical — same payload bytes
 * delivered, same fs/nic/disk work performed — differing only in how
 * cycles are charged and when sleepers wake. The sweep drives a mixed
 * thttpd + sshd + postmark corpus through both stacks at 1-4 vCPUs and
 * compares payload digests and device/fs stat counters exactly.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/postmark.hh"
#include "apps/ssh_common.hh"
#include "apps/thttpd.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::apps;

namespace
{

/** FNV-1a over a byte stream, for payload digests. */
struct Fnv
{
    uint64_t h = 1469598103934665603ull;
    void
    feed(const uint8_t *p, size_t n)
    {
        for (size_t i = 0; i < n; i++) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    }
};

/** Everything that must be identical between the two stacks. */
struct WorkloadResult
{
    uint64_t httpBytes = 0;
    uint64_t httpDigest = 0;
    uint64_t sshBytes = 0;
    uint64_t sshDigest = 0;
    uint64_t pmCreated = 0;
    uint64_t pmDeleted = 0;
    uint64_t pmBytesRead = 0;
    uint64_t pmBytesWritten = 0;
    std::map<std::string, uint64_t> stats;
};

/** Stats that count *work done*, not how it was charged or delivered.
 *  Deliberately excludes the async-only counters (kernel.device_irqs,
 *  kernel.irqs_coalesced, kernel.softirq_wakes,
 *  kernel.zero_copy_sends) and anything timing-dependent. */
const char *kInvariantStats[] = {
    "nic.tx_packets",   "nic.tx_bytes",     "nic.rx_packets",
    "disk.requests",    "disk.blocks",      "bcache.writebacks",
    "fs.creates",       "fs.unlinks",       "fs.bytes_read",
    "fs.bytes_written", "net.bytes_sent",   "kernel.forks",
    "kernel.execs",     "nic.ring_blocked_dma",
    "disk.ring_blocked_dma",
};

SystemConfig
sweepConfig(bool async_io, unsigned vcpus)
{
    SystemConfig cfg;
    cfg.vg = sim::VgConfig::full();
    cfg.vg.asyncIo = async_io;
    cfg.vg.vcpus = vcpus;
    cfg.memFrames = 8192;
    cfg.diskBlocks = 8192;
    cfg.rsaBits = 384;
    return cfg;
}

/** One HTTP GET with the body digested (apacheBench discards it). */
void
httpFetch(UserApi &api, uint16_t port, WorkloadResult &out)
{
    int fd = api.connect(port);
    ASSERT_GE(fd, 0);
    const char *req = "GET /file.bin HTTP/1.0\r\n\r\n";
    api.sendHost(fd, req, std::strlen(req));
    std::vector<uint8_t> buf(16 * 1024);
    std::string head;
    bool headers_done = false;
    Fnv fnv;
    while (true) {
        int64_t n = api.recvHost(fd, buf.data(), buf.size());
        if (n <= 0)
            break;
        size_t body_off = 0;
        if (!headers_done) {
            head.append(reinterpret_cast<char *>(buf.data()),
                        size_t(n));
            size_t hdr_end = head.find("\r\n\r\n");
            if (hdr_end == std::string::npos)
                continue;
            headers_done = true;
            // Bytes of this chunk that belong to the body.
            size_t consumed = head.size() - size_t(n);
            body_off = hdr_end + 4 > consumed ? hdr_end + 4 - consumed
                                              : 0;
        }
        fnv.feed(buf.data() + body_off, size_t(n) - body_off);
        out.httpBytes += size_t(n) - body_off;
    }
    api.close(fd);
    out.httpDigest = fnv.h;
}

WorkloadResult
runCorpus(bool async_io, unsigned vcpus)
{
    WorkloadResult out;
    System sys(sweepConfig(async_io, vcpus));
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", app_key);

    // Content corpus: an HTTP file and an ssh payload with
    // non-uniform bytes so digests catch reordering or truncation.
    Ino ino = 0;
    sys.kernel().fs().create("/file.bin", ino);
    std::vector<uint8_t> web(24 * 1024);
    for (size_t i = 0; i < web.size(); i++)
        web[i] = uint8_t(i * 7 + 3);
    sys.kernel().fs().write(ino, 0, web.data(), web.size());

    sys.kernel().fs().create("/payload", ino);
    std::vector<uint8_t> pay(32 * 1024);
    for (size_t i = 0; i < pay.size(); i++)
        pay[i] = uint8_t(i * 13 + 5);
    sys.kernel().fs().write(ino, 0, pay.data(), pay.size());

    sys.runProcess("init", [&](UserApi &api) {
        int status = -1;

        // ssh host keys first (the servers need them).
        uint64_t kg = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        api.waitpid(kg, status);
        EXPECT_EQ(status, 0);

        // Servers: one thttpd (8 requests) and one sshd session.
        uint64_t web_srv = api.fork([](UserApi &capi) {
            ThttpdConfig cfg;
            cfg.port = 80;
            cfg.maxRequests = 8;
            return thttpd(capi, cfg);
        });
        uint64_t ssh_srv = api.fork([](UserApi &capi) {
            SshdConfig cfg;
            cfg.maxConnections = 1;
            return sshd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        // Clients + postmark run concurrently so the stacks are
        // exercised under contention, not one flow at a time.
        uint64_t http_cli = api.fork([&](UserApi &capi) {
            for (int r = 0; r < 8; r++) {
                WorkloadResult one;
                httpFetch(capi, 80, one);
                out.httpBytes += one.httpBytes;
                out.httpDigest ^= one.httpDigest + 0x9e3779b9 +
                                  (out.httpDigest << 6);
            }
            return 0;
        });
        uint64_t ssh_cli = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [&](UserApi &napi) {
                SshResult r = sshFetch(napi, "/payload", false,
                                       /*keep_data=*/true);
                EXPECT_TRUE(r.ok);
                out.sshBytes = r.bytes;
                Fnv fnv;
                fnv.feed(r.data.data(), r.data.size());
                out.sshDigest = fnv.h;
                return r.ok ? 0 : 1;
            });
        });
        uint64_t pm = api.fork([&](UserApi &capi) {
            PostmarkConfig cfg;
            cfg.baseFiles = 20;
            cfg.transactions = 120;
            cfg.maxSize = 4000;
            PostmarkResult r = postmark(capi, cfg);
            out.pmCreated = r.filesCreated;
            out.pmDeleted = r.filesDeleted;
            out.pmBytesRead = r.bytesRead;
            out.pmBytesWritten = r.bytesWritten;
            return 0;
        });

        api.waitpid(http_cli, status);
        api.waitpid(ssh_cli, status);
        api.waitpid(pm, status);
        api.waitpid(web_srv, status);
        api.waitpid(ssh_srv, status);
        return 0;
    });

    for (const char *k : kInvariantStats)
        out.stats[k] = sys.ctx().stats().get(k);
    return out;
}

} // namespace

TEST(IoRing, IoRingEquivalenceSweep)
{
    for (unsigned vcpus = 1; vcpus <= 4; vcpus++) {
        SCOPED_TRACE("vcpus=" + std::to_string(vcpus));
        WorkloadResult ring = runCorpus(/*async_io=*/true, vcpus);
        WorkloadResult sync = runCorpus(/*async_io=*/false, vcpus);

        // Payload bytes, byte-for-byte.
        EXPECT_EQ(ring.httpBytes, sync.httpBytes);
        EXPECT_EQ(ring.httpDigest, sync.httpDigest);
        EXPECT_EQ(ring.sshBytes, sync.sshBytes);
        EXPECT_EQ(ring.sshDigest, sync.sshDigest);
        EXPECT_GT(ring.httpBytes, 0u);
        EXPECT_GT(ring.sshBytes, 0u);

        // The postmark corpus did identical fs work.
        EXPECT_EQ(ring.pmCreated, sync.pmCreated);
        EXPECT_EQ(ring.pmDeleted, sync.pmDeleted);
        EXPECT_EQ(ring.pmBytesRead, sync.pmBytesRead);
        EXPECT_EQ(ring.pmBytesWritten, sync.pmBytesWritten);

        // Device / fs counters: same work, whichever stack ran it.
        for (const char *k : kInvariantStats) {
            SCOPED_TRACE(k);
            EXPECT_EQ(ring.stats[k], sync.stats[k]);
        }
        // And nothing was blocked — this is the benign workload.
        EXPECT_EQ(ring.stats["nic.ring_blocked_dma"], 0u);
        EXPECT_EQ(ring.stats["disk.ring_blocked_dma"], 0u);
    }
}

TEST(IoRing, AsyncIsDefaultAndLegacyFlagTurnsItOff)
{
    sim::VgConfig def = sim::VgConfig::full();
    EXPECT_TRUE(def.asyncIo);
    EXPECT_TRUE(sim::VgConfig::native().asyncIo);
    EXPECT_GE(def.ringSize, 2u);
}
