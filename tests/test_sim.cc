/**
 * @file
 * Unit tests for the simulation core: clock, stats, config, charging.
 */

#include <gtest/gtest.h>

#include "sim/context.hh"

using namespace vg::sim;

TEST(Clock, StartsAtZeroAndAdvances)
{
    Clock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    EXPECT_EQ(clock.now(), 100u);
    clock.advance(1);
    EXPECT_EQ(clock.now(), 101u);
}

TEST(Clock, TimeConversion)
{
    EXPECT_DOUBLE_EQ(Clock::toUsec(3400), 1.0);
    EXPECT_DOUBLE_EQ(Clock::toSec(3400000000ull), 1.0);
}

TEST(Clock, StopwatchMeasuresWindow)
{
    Clock clock;
    clock.advance(50);
    Stopwatch sw(clock);
    clock.advance(70);
    EXPECT_EQ(sw.elapsed(), 70u);
    sw.restart();
    EXPECT_EQ(sw.elapsed(), 0u);
    clock.advance(5);
    EXPECT_EQ(sw.elapsed(), 5u);
}

TEST(Stats, CountersCreateOnFirstUse)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.add("a");
    stats.add("a", 4);
    EXPECT_EQ(stats.get("a"), 5u);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
}

TEST(Stats, DumpListsAllCounters)
{
    StatSet stats;
    stats.add("x", 2);
    stats.add("y", 3);
    std::string d = stats.dump();
    EXPECT_NE(d.find("x 2"), std::string::npos);
    EXPECT_NE(d.find("y 3"), std::string::npos);
}

TEST(Config, NativeDisablesEverything)
{
    VgConfig c = VgConfig::native();
    EXPECT_FALSE(c.sandboxMemory);
    EXPECT_FALSE(c.cfi);
    EXPECT_FALSE(c.mmuChecks);
    EXPECT_FALSE(c.dmaProtection);
    EXPECT_FALSE(c.protectInterruptContext);
    EXPECT_FALSE(c.signedTranslations);
    EXPECT_FALSE(c.secureRng);
    EXPECT_FALSE(c.anyInstrumentation());
}

TEST(Config, FullEnablesEverything)
{
    VgConfig c = VgConfig::full();
    EXPECT_TRUE(c.sandboxMemory);
    EXPECT_TRUE(c.cfi);
    EXPECT_TRUE(c.anyInstrumentation());
}

TEST(Context, KernelWorkCostsMoreUnderVg)
{
    SimContext native(VgConfig::native());
    SimContext vg(VgConfig::full());

    native.chargeKernelWork(100, 40, 10);
    vg.chargeKernelWork(100, 40, 10);

    EXPECT_GT(vg.clock().now(), native.clock().now());
    EXPECT_EQ(native.clock().now(), 100u);
}

TEST(Context, BulkCopyIsRangeCheckedOnce)
{
    // memcpy sandboxing is O(1), so the VG delta must not scale with
    // size (S 5: memcpy() calls are instrumented as a unit).
    SimContext native(VgConfig::native());
    SimContext vg(VgConfig::full());

    native.chargeKernelBulk(4096);
    vg.chargeKernelBulk(4096);
    Cycles small_delta = vg.clock().now() - native.clock().now();

    native.chargeKernelBulk(1 << 20);
    vg.chargeKernelBulk(1 << 20);
    Cycles large_delta = vg.clock().now() - native.clock().now();

    EXPECT_EQ(small_delta, vg.costs().sandboxPerBulk);
    EXPECT_EQ(large_delta, 2 * vg.costs().sandboxPerBulk);
}

TEST(Context, SyscallGateChargesVgExtra)
{
    SimContext native(VgConfig::native());
    SimContext vg(VgConfig::full());

    native.chargeSyscallGate();
    vg.chargeSyscallGate();

    EXPECT_EQ(native.clock().now(), native.costs().syscallGate);
    EXPECT_EQ(vg.clock().now(),
              vg.costs().syscallGate + vg.costs().syscallGateVgExtra);
}

TEST(Context, StatsTrackChargedEvents)
{
    SimContext ctx;
    ctx.chargeSyscallGate();
    ctx.chargeSyscallGate();
    ctx.chargeTrap();
    ctx.chargeMmuUpdate();
    EXPECT_EQ(ctx.stats().get("sva.syscalls"), 2u);
    EXPECT_EQ(ctx.stats().get("sva.traps"), 1u);
    EXPECT_EQ(ctx.stats().get("sva.mmu_updates"), 1u);
}

TEST(Context, CryptoChargesScaleWithBytes)
{
    SimContext ctx;
    Cycles before = ctx.clock().now();
    ctx.chargeAes(1000);
    Cycles aes_cost = ctx.clock().now() - before;
    EXPECT_EQ(aes_cost, 1000 * ctx.costs().aesPerByte);
}
