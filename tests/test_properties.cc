/**
 * @file
 * Property-based sweeps over the security invariants:
 *
 *  - the sandboxing pass makes it impossible for compiled kernel code
 *    to touch ghost or SVA-internal memory, for *any* address;
 *  - CFI makes every computed jump land on a label or die;
 *  - no sequence of MMU intrinsic calls can map a ghost frame or a
 *    ghost virtual address for the OS;
 *  - the filesystem agrees with an in-memory reference model under
 *    random operation sequences.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "crypto/drbg.hh"
#include "hw/layout.hh"
#include "kernel/fs.hh"
#include "sva/vm.hh"
#include "vir/builder.hh"
#include "vir/text.hh"
#include "vir/verifier.hh"

using namespace vg;
using namespace vg::cc;

namespace
{

/** Recording memory port: remembers every address it was asked to
 *  touch and never faults. */
class RecordingPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned, uint64_t &out) override
    {
        touched.push_back(va);
        out = 0;
        return true;
    }

    bool
    write(uint64_t va, unsigned, uint64_t) override
    {
        touched.push_back(va);
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        touched.push_back(dst);
        touched.push_back(src);
        if (len > 0) {
            touched.push_back(dst + len - 1);
            touched.push_back(src + len - 1);
        }
        return true;
    }

    std::vector<uint64_t> touched;
};

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
constexpr uint64_t kStackBase = 0xffffffa000000000ull;

} // namespace

/** Sweep: instrumented loads/stores/memcpys with arbitrary addresses
 *  never reach protected ranges. */
class SandboxSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SandboxSweep, NoInstrumentedAccessReachesProtectedMemory)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 's', 'w'});
    sim::SimContext ctx(sim::VgConfig::full());
    Translator tr(std::vector<uint8_t>(32, 9), ctx);
    auto t = tr.translateText(R"(
func @probe(2) {
entry:
  %2 = load.i64 %0
  store.i64 %0, %2
  %3 = const 32
  memcpy %1, %0, %3
  %4 = load.i8 %1
  ret %4
}
)",
                              kCodeBase);
    ASSERT_TRUE(t.ok) << t.error;

    RecordingPort port;
    ExternTable externs;
    Executor exec(*t.image, port, externs, ctx, kStackBase, 1 << 20);

    for (int i = 0; i < 60; i++) {
        uint64_t a = rng.next64();
        uint64_t b = rng.next64();
        // Bias half the samples into the interesting ranges.
        if (i % 4 == 1)
            a = hw::ghostBase + (a % (hw::ghostEnd - hw::ghostBase));
        if (i % 4 == 2)
            a = hw::svaBase + (a % (hw::svaEnd - hw::svaBase));
        if (i % 4 == 3)
            b = hw::ghostBase + (b % (hw::ghostEnd - hw::ghostBase));

        port.touched.clear();
        auto r = exec.call("probe", {a, b});
        // Faults are fine (address 0); leaks are not.
        (void)r;
        for (uint64_t va : port.touched) {
            EXPECT_FALSE(hw::isGhostAddr(va))
                << "ghost leak via " << std::hex << a << "/" << b;
            EXPECT_FALSE(hw::isSvaAddr(va))
                << "sva leak via " << std::hex << a << "/" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SandboxSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

/** Sweep: computed control transfers either hit the function entry
 *  label or die with a CFI violation — never execute mid-function. */
class CfiSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CfiSweep, IndirectCallsLandOnLabelsOrDie)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'c', 'f'});
    sim::SimContext ctx(sim::VgConfig::full());
    Translator tr(std::vector<uint8_t>(32, 9), ctx);
    auto t = tr.translateText(R"(
func @victim(1) {
entry:
  %1 = const 77
  ret %1
}

func @trampoline(1) {
entry:
  %1 = callind %0()
  ret %1
}
)",
                              kCodeBase);
    ASSERT_TRUE(t.ok) << t.error;

    RecordingPort port;
    ExternTable externs;
    Executor exec(*t.image, port, externs, ctx, kStackBase, 1 << 20);

    uint64_t entry = t.image->functions.at("victim").entryAddr;
    for (int i = 0; i < 80; i++) {
        uint64_t target = rng.nextBounded(2) == 0
                              ? kCodeBase + rng.nextBounded(
                                                t.image->code.size() *
                                                mInstBytes)
                              : rng.next64();
        auto r = exec.call("trampoline", {target});
        // The masked target equal to the victim's entry is the only
        // way to succeed.
        if (r.ok) {
            EXPECT_EQ(target | hw::kernelBase, entry);
            EXPECT_EQ(r.value, 77u);
        } else {
            EXPECT_TRUE(r.fault == ExecFault::CfiViolation ||
                        r.fault == ExecFault::BadCallTarget ||
                        r.fault == ExecFault::FuelExhausted)
                << faultName(r.fault);
        }
    }
    // And the legitimate target does work.
    auto ok = exec.call("trampoline", {entry});
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.value, 77u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfiSweep, ::testing::Values(1, 2, 3));

/** Sweep: random MMU intrinsic call sequences never yield a mapping
 *  of a ghost frame or at a ghost VA. */
class MmuSweep : public ::testing::TestWithParam<int>
{};

TEST_P(MmuSweep, GhostStaysUnmapped)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'm', 'u'});
    sim::SimContext ctx(sim::VgConfig::full());
    hw::PhysMem mem(512);
    hw::Mmu mmu(mem, ctx);
    hw::Iommu iommu(mem, ctx);
    hw::Tpm tpm({'m', 's'});
    sva::SvaVm vm(ctx, mem, mmu, iommu, tpm);
    vm.install(384);
    vm.boot();

    std::deque<hw::Frame> free_frames;
    for (hw::Frame f = 64; f < 512; f++)
        free_frames.push_back(f);
    vm.setFrameProvider([&]() -> std::optional<hw::Frame> {
        if (free_frames.empty())
            return std::nullopt;
        hw::Frame f = free_frames.front();
        free_frames.pop_front();
        return f;
    });
    vm.setFrameReceiver([&](hw::Frame f) { free_frames.push_back(f); });

    sva::SvaError err;
    ASSERT_TRUE(vm.declarePtPage(0, 4, &err));
    // A ghost allocation to have real ghost frames in play.
    ASSERT_TRUE(vm.allocGhostMemory(1, 0, hw::ghostBase, 4, &err));

    // Random OS-side intrinsic storm.
    for (int i = 0; i < 400; i++) {
        uint64_t dice = rng.nextBounded(6);
        hw::Frame frame = rng.nextBounded(512);
        hw::Vaddr va = rng.nextBounded(2) == 0
                           ? rng.nextBounded(1ull << 47)
                           : hw::ghostBase +
                                 rng.nextBounded(1ull << 30) * 4096;
        va &= ~(hw::pageSize - 1);
        switch (dice) {
          case 0:
            vm.declarePtPage(frame, int(rng.nextBounded(4)) + 1, &err);
            break;
          case 1:
            vm.installTable(rng.nextBounded(512), 4, va, frame, &err);
            break;
          case 2:
            vm.mapPage(0, va, frame, rng.nextBounded(2) == 0, true,
                       true, &err);
            break;
          case 3:
            vm.unmapPage(0, va, &err);
            break;
          case 4:
            vm.protectPage(0, va, true, false, &err);
            break;
          default:
            vm.undeclarePtPage(frame, &err);
            break;
        }
    }

    // Invariant 1: every ghost frame still has exactly its one ghost
    // mapping and kept its type.
    uint64_t ghost_frames = vm.frames().count(sva::FrameType::Ghost);
    EXPECT_EQ(ghost_frames, 4u);

    // Invariant 2: walking any ghost VA yields either nothing or a
    // Ghost-typed frame (the VM's own mapping) — never an OS mapping
    // of a non-ghost frame and never an OS-writable alias elsewhere.
    for (uint64_t off = 0; off < 64; off++) {
        hw::Vaddr va = hw::ghostBase + off * hw::pageSize;
        auto pte = mmu.probe(va);
        if (pte.has_value()) {
            hw::Frame f = hw::pte::frameNum(*pte);
            EXPECT_EQ(vm.frames()[f].type, sva::FrameType::Ghost);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmuSweep, ::testing::Values(7, 8, 9));

/** Random fs operation sequences vs an in-memory reference model. */
class FsModelSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FsModelSweep, MatchesReferenceModel)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'f', 's'});
    sim::SimContext ctx;
    hw::PhysMem mem(16);
    hw::Iommu iommu(mem, ctx);
    hw::Disk disk(4096, iommu, ctx);
    kern::BufferCache cache(disk, ctx, 64); // small: force evictions
    kern::Fs fs(cache, ctx, 4096);
    fs.mkfs();

    std::map<std::string, std::vector<uint8_t>> model;

    for (int op = 0; op < 500; op++) {
        std::string name = "/f" + std::to_string(rng.nextBounded(12));
        switch (rng.nextBounded(5)) {
          case 0: { // create
            kern::Ino ino = 0;
            kern::FsStatus s = fs.create(name, ino);
            if (model.count(name))
                EXPECT_EQ(s, kern::FsStatus::Exists);
            else {
                EXPECT_EQ(s, kern::FsStatus::Ok);
                model[name] = {};
            }
            break;
          }
          case 1: { // unlink
            kern::FsStatus s = fs.unlink(name);
            if (model.count(name)) {
                EXPECT_EQ(s, kern::FsStatus::Ok);
                model.erase(name);
            } else {
                EXPECT_EQ(s, kern::FsStatus::NotFound);
            }
            break;
          }
          case 2: { // write at random offset
            if (!model.count(name))
                break;
            kern::Ino ino = 0;
            ASSERT_EQ(fs.lookup(name, ino), kern::FsStatus::Ok);
            uint64_t off = rng.nextBounded(20000);
            uint64_t len = rng.nextBounded(3000) + 1;
            std::vector<uint8_t> data(len);
            rng.generate(data.data(), len);
            ASSERT_EQ(fs.write(ino, off, data.data(), len),
                      int64_t(len));
            auto &ref = model[name];
            if (ref.size() < off + len)
                ref.resize(off + len, 0);
            std::copy(data.begin(), data.end(), ref.begin() + long(off));
            break;
          }
          case 3: { // read at random offset
            if (!model.count(name))
                break;
            kern::Ino ino = 0;
            ASSERT_EQ(fs.lookup(name, ino), kern::FsStatus::Ok);
            uint64_t off = rng.nextBounded(24000);
            uint64_t len = rng.nextBounded(4000) + 1;
            std::vector<uint8_t> got(len, 0xEE);
            int64_t n = fs.read(ino, off, got.data(), len);
            const auto &ref = model[name];
            int64_t expect =
                off >= ref.size()
                    ? 0
                    : int64_t(std::min<uint64_t>(len,
                                                 ref.size() - off));
            ASSERT_EQ(n, expect);
            for (int64_t i = 0; i < n; i++)
                ASSERT_EQ(got[size_t(i)], ref[size_t(off) + size_t(i)])
                    << name << " off=" << off + uint64_t(i);
            break;
          }
          default: { // stat
            kern::FileStat st;
            kern::Ino ino = 0;
            if (fs.lookup(name, ino) == kern::FsStatus::Ok) {
                ASSERT_EQ(fs.stat(ino, st), kern::FsStatus::Ok);
                EXPECT_EQ(st.size, model[name].size());
            } else {
                EXPECT_FALSE(model.count(name));
            }
            break;
          }
        }
    }

    // Final directory listing matches the model.
    std::vector<std::string> names;
    kern::Ino root = 1;
    fs.readdir(root, names);
    EXPECT_EQ(names.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsModelSweep,
                         ::testing::Values(11, 22, 33, 44));

// --------------------------------------------------------------------
// Differential execution: instrumentation preserves semantics
// --------------------------------------------------------------------

namespace
{

/** Generate a random straight-line arithmetic function using the
 *  builder (no memory ops, so native and instrumented runs must agree
 *  bit-for-bit). */
vir::Module
randomArithModule(crypto::CtrDrbg &rng, int n_insts)
{
    vir::Module mod;
    mod.name = "randarith";
    vir::IrBuilder b(mod);
    b.beginFunction("f", 2);
    int entry = b.makeBlock("entry");
    b.setInsertPoint(entry);

    std::vector<int> live = {0, 1};
    static const vir::Opcode ops[] = {
        vir::Opcode::Add,  vir::Opcode::Sub,  vir::Opcode::Mul,
        vir::Opcode::And,  vir::Opcode::Or,   vir::Opcode::Xor,
        vir::Opcode::Shl,  vir::Opcode::LShr, vir::Opcode::AShr,
    };
    for (int i = 0; i < n_insts; i++) {
        if (rng.nextBounded(5) == 0) {
            live.push_back(b.constI(rng.next64()));
            continue;
        }
        int a = live[rng.nextBounded(live.size())];
        int c = live[rng.nextBounded(live.size())];
        vir::Opcode op = ops[rng.nextBounded(std::size(ops))];
        live.push_back(b.binop(op, a, c));
    }
    b.ret(live.back());
    return mod;
}

} // namespace

class DifferentialSweep : public ::testing::TestWithParam<int>
{};

TEST_P(DifferentialSweep, InstrumentationPreservesSemantics)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'd', 'f'});
    for (int round = 0; round < 10; round++) {
        vir::Module mod =
            randomArithModule(rng, int(rng.nextBounded(40)) + 5);
        ASSERT_TRUE(vir::verify(mod).ok());

        // Text roundtrip is also semantics-preserving.
        auto parsed = vir::parse(vir::print(mod));
        ASSERT_TRUE(parsed.ok) << parsed.error;

        uint64_t x = rng.next64(), y = rng.next64();
        uint64_t results[2];
        int idx = 0;
        for (auto cfg :
             {sim::VgConfig::native(), sim::VgConfig::full()}) {
            sim::SimContext ctx(cfg);
            Translator tr(std::vector<uint8_t>(32, 1), ctx);
            vir::ParseResult copy = vir::parse(vir::print(mod));
            auto t = tr.translateModule(std::move(copy.module),
                                        kCodeBase);
            ASSERT_TRUE(t.ok) << t.error;
            RecordingPort port;
            ExternTable externs;
            Executor exec(*t.image, port, externs, ctx, kStackBase,
                          1 << 20);
            auto r = exec.call("f", {x, y});
            ASSERT_TRUE(r.ok) << r.detail;
            results[idx++] = r.value;
        }
        EXPECT_EQ(results[0], results[1])
            << "instrumented execution diverged";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Values(10, 20, 30, 40));

// --------------------------------------------------------------------
// Fused vs unfused sandbox masking: byte-identical semantics
// --------------------------------------------------------------------

namespace
{

/** Recording port that faults on the null page, so SVA-internal
 *  accesses (rewritten to address 0) produce observable MemFaults. */
class NullFaultPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned, uint64_t &out) override
    {
        touched.push_back(va);
        out = va * 0x9e3779b97f4a7c15ull; // address-derived value
        return va >= hw::pageSize;
    }

    bool
    write(uint64_t va, unsigned, uint64_t) override
    {
        touched.push_back(va);
        return va >= hw::pageSize;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t) override
    {
        touched.push_back(dst);
        touched.push_back(src);
        return dst >= hw::pageSize && src >= hw::pageSize;
    }

    std::vector<uint64_t> touched;
};

} // namespace

/** Sweep: the fused SandboxAddr machine op and the unfused
 *  13-instruction masking sequence produce identical final addresses,
 *  identical fault behavior, identical instruction counts and
 *  identical simulated cycles for every address class. */
class FusionSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FusionSweep, FusedAndUnfusedMaskingAgree)
{
    crypto::CtrDrbg rng({uint8_t(GetParam()), 'f', 'u'});
    const char *src = R"(
func @probe(2) {
entry:
  %2 = load.i64 %0
  store.i64 %0, %2
  %3 = const 24
  memcpy %1, %0, %3
  %4 = load.i8 %1
  ret %4
}
)";

    sim::VgConfig unfused_cfg = sim::VgConfig::full();
    unfused_cfg.fuseSandboxMasks = false;
    sim::SimContext fctx(sim::VgConfig::full());
    sim::SimContext uctx(unfused_cfg);
    Translator ftr(std::vector<uint8_t>(32, 9), fctx);
    Translator utr(std::vector<uint8_t>(32, 9), uctx);
    auto ft = ftr.translateText(src, kCodeBase);
    auto ut = utr.translateText(src, kCodeBase);
    ASSERT_TRUE(ft.ok) << ft.error;
    ASSERT_TRUE(ut.ok) << ut.error;

    // Fusion actually happened: 5 masked operands (load, store,
    // memcpy dst+src, load), 12 insts saved each.
    EXPECT_EQ(ft.fuseStats.sitesInstrumented, 5u);
    EXPECT_EQ(ft.image->code.size() + ft.fuseStats.instsRemoved,
              ut.image->code.size());

    NullFaultPort fport, uport;
    ExternTable externs;
    Executor fexec(*ft.image, fport, externs, fctx, kStackBase, 1 << 20);
    Executor uexec(*ut.image, uport, externs, uctx, kStackBase, 1 << 20);

    for (int i = 0; i < 120; i++) {
        uint64_t a = rng.next64();
        uint64_t b = rng.next64();
        // Cycle both operands through the address classes: ghost,
        // SVA-internal, kernel, user, and fully random.
        switch (i % 5) {
          case 0:
            a = hw::ghostBase + (a % (hw::ghostEnd - hw::ghostBase));
            break;
          case 1:
            a = hw::svaBase + (a % (hw::svaEnd - hw::svaBase));
            b = hw::svaBase + (b % (hw::svaEnd - hw::svaBase));
            break;
          case 2:
            a = hw::kernelBase + (a % (1ull << 30));
            break;
          case 3:
            a %= hw::userEnd;
            b = hw::ghostBase + (b % (hw::ghostEnd - hw::ghostBase));
            break;
          default:
            break;
        }

        fport.touched.clear();
        uport.touched.clear();
        sim::Cycles fstart = fctx.clock().now();
        sim::Cycles ustart = uctx.clock().now();
        auto fr = fexec.call("probe", {a, b});
        auto ur = uexec.call("probe", {a, b});

        EXPECT_EQ(fr.ok, ur.ok) << std::hex << a << "/" << b;
        EXPECT_EQ(fr.fault, ur.fault)
            << faultName(fr.fault) << " vs " << faultName(ur.fault)
            << " for " << std::hex << a << "/" << b;
        EXPECT_EQ(fr.value, ur.value) << std::hex << a << "/" << b;
        EXPECT_EQ(fr.instsExecuted, ur.instsExecuted)
            << "fused cost accounting diverged for " << std::hex << a;
        EXPECT_EQ(fctx.clock().now() - fstart,
                  uctx.clock().now() - ustart)
            << "simulated cycles diverged for " << std::hex << a;
        EXPECT_EQ(fport.touched, uport.touched)
            << "final addresses diverged for " << std::hex << a << "/"
            << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionSweep,
                         ::testing::Values(3, 14, 15, 92));
