/**
 * @file
 * Trace-tier tests: differential equivalence against the pure
 * interpreter, trace formation and metadata, the verifier gate on
 * spliced images (including the trace-targeted miscompile sweep), the
 * VG-TR rule family on hand-built images, and the fused-dispatch fuel
 * budget.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "compiler/exec.hh"
#include "compiler/minject.hh"
#include "compiler/mverify.hh"
#include "compiler/translator.hh"
#include "sim/context.hh"

using namespace vg;
using namespace vg::cc;

namespace
{

/** This suite exercises the tier itself, so it must run with the tier
 *  available regardless of the harness environment (CI re-runs the
 *  rest of tier-1 under VG_DISABLE_TRACE_TIER=1 as an A/B;
 *  EnvKnobDisablesTier sets the variable explicitly for its own
 *  scope). */
const int kEnvCleared = [] {
    unsetenv("VG_DISABLE_TRACE_TIER");
    return 0;
}();

/** Sparse flat memory that never faults (reads of untouched bytes
 *  return 0) — stands in for the kernel's view of memory. */
class FlatPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned bytes, uint64_t &out) override
    {
        out = 0;
        for (unsigned i = 0; i < bytes; i++)
            out |= uint64_t(byteAt(va + i)) << (8 * i);
        return true;
    }

    bool
    write(uint64_t va, unsigned bytes, uint64_t val) override
    {
        for (unsigned i = 0; i < bytes; i++)
            _mem[va + i] = uint8_t(val >> (8 * i));
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        for (uint64_t i = 0; i < len; i++)
            _mem[dst + i] = byteAt(src + i);
        return true;
    }

    uint8_t
    byteAt(uint64_t va) const
    {
        auto it = _mem.find(va);
        return it == _mem.end() ? 0 : it->second;
    }

  private:
    std::map<uint64_t, uint8_t> _mem;
};

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
constexpr uint64_t kStackBase = 0xffffffa000000000ull;
constexpr uint64_t kStackSize = 1 << 20;

const std::vector<uint8_t> kKey(32, 0x11);

/** Low threshold so a handful of calls is enough to form traces. */
constexpr unsigned kHotThreshold = 8;

// ---------------------------------------------------------------------
// VIR corpus: loop-heavy modules that exercise every traceable op
// class (arith, compares, side exits, masked memory, memcpy, calls)
// plus fault paths.
// ---------------------------------------------------------------------

/** Pure arithmetic counted loop. */
const char *kSumLoop = R"(
func @sum(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = mul %2, %2
  %1 = add %1, %4
  %5 = const 1
  %2 = add %2, %5
  br head
done:
  ret %1
}
)";

/** Store/load loop: sandbox masks inside the hot trace. */
const char *kMemLoop = R"(
func @memsum(2) {
entry:
  %2 = const 0
  %3 = const 0
  br head
head:
  %4 = icmp ult %3, %1
  condbr %4, body, done
body:
  %5 = add %0, %3
  store.i8 %5, %3
  %6 = load.i8 %5
  %2 = add %2, %6
  %7 = const 1
  %3 = add %3, %7
  br head
done:
  ret %2
}
)";

/** Nested loops: inner anchor becomes hot first, outer later. */
const char *kNestedLoop = R"(
func @nested(1) {
entry:
  %1 = const 0
  %2 = const 0
  br ohead
ohead:
  %3 = icmp ult %2, %0
  condbr %3, oinit, done
oinit:
  %4 = const 0
  br ihead
ihead:
  %5 = icmp ult %4, %0
  condbr %5, ibody, onext
ibody:
  %6 = xor %2, %4
  %1 = add %1, %6
  %7 = const 1
  %4 = add %4, %7
  br ihead
onext:
  %8 = const 1
  %2 = add %2, %8
  br ohead
done:
  ret %1
}
)";

/** Data-dependent branch in the body: frequent side exits. */
const char *kBranchyLoop = R"(
func @branchy(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = const 1
  %5 = and %2, %4
  condbr %5, odd, even
odd:
  %6 = const 3
  %7 = mul %2, %6
  %1 = add %1, %7
  br next
even:
  %1 = sub %1, %2
  br next
next:
  %8 = const 1
  %2 = add %2, %8
  br head
done:
  ret %1
}
)";

/** Call in the loop body: calls are untraceable, so recording is cut
 *  into linear traces and the callee entry is its own anchor. */
const char *kCallLoop = R"(
func @double(1) {
entry:
  %1 = add %0, %0
  ret %1
}

func @calls(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = call @double(%2)
  %1 = add %1, %4
  %5 = const 1
  %2 = add %2, %5
  br head
done:
  ret %1
}
)";

/** Bulk-copy loop: Memcpy's length-dependent cycle cost in a trace. */
const char *kCopyLoop = R"(
func @copies(2) {
entry:
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %1
  condbr %3, body, done
body:
  %4 = const 64
  %5 = add %0, %4
  memcpy %5, %0, %4
  %6 = const 1
  %2 = add %2, %6
  br head
done:
  ret %2
}
)";

/** Divides by a shrinking counter: faults DivideByZero once the
 *  loop — by then running as a trace — reaches zero. */
const char *kDivFault = R"(
func @divdown(1) {
entry:
  %1 = const 0
  br head
head:
  %2 = udiv %1, %0
  %1 = add %1, %2
  %3 = const 1
  %0 = sub %0, %3
  br head
}
)";

struct Scenario
{
    const char *name;
    const char *src;
    const char *fn;
    std::vector<std::vector<uint64_t>> calls;
    uint64_t fuel = 0; ///< 0 = executor default
};

std::vector<Scenario>
corpus()
{
    // Mix of cold calls (below threshold), threshold-crossing calls
    // and long hot calls, so formation happens mid-sequence and later
    // calls run through the spliced blocks.
    return {
        {"sum", kSumLoop, "sum", {{0}, {3}, {500}, {7}, {200}}, 0},
        {"mem", kMemLoop, "memsum",
         {{4096, 5}, {4096, 300}, {8192, 128}}, 0},
        {"nested", kNestedLoop, "nested", {{2}, {25}, {30}}, 0},
        {"branchy", kBranchyLoop, "branchy", {{6}, {400}, {111}}, 0},
        {"calls", kCallLoop, "calls", {{5}, {250}, {64}}, 0},
        {"copy", kCopyLoop, "copies", {{4096, 4}, {4096, 120}}, 0},
        {"divfault", kDivFault, "divdown", {{40}, {40}, {40}}, 0},
        {"fuel", kSumLoop, "sum", {{100000}, {100000}}, 20000},
    };
}

/** Everything the tier must not change, captured from one run. */
struct Outcome
{
    std::vector<ExecResult> results;
    sim::Cycles cycles = 0;
    std::map<std::string, uint64_t> execStats;
    uint64_t tracesFormed = 0;
    uint64_t traceExecuted = 0;
};

Outcome
runScenario(const Scenario &sc, sim::VgConfig cfg, bool tier)
{
    cfg.traceTier = true; // the off-run simply never enables the tier
    cfg.traceHotThreshold = kHotThreshold;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(sc.src, kCodeBase);
    EXPECT_TRUE(tr.ok) << sc.name << ": " << tr.error;
    if (!tr.ok)
        return {};

    FlatPort port;
    ExternTable externs;
    Executor exec(*tr.image, port, externs, ctx, kStackBase,
                  kStackSize);
    if (sc.fuel)
        exec.setFuel(sc.fuel);
    if (tier)
        exec.enableTraceTier(translator);

    Outcome out;
    for (const auto &args : sc.calls)
        out.results.push_back(exec.call(sc.fn, args));
    out.cycles = ctx.clock().now();
    out.tracesFormed = exec.tracesFormed();
    for (const auto &[k, v] : ctx.stats().all()) {
        if (k.rfind("exec.", 0) == 0)
            out.execStats[k] = v;
        if (k == "trace.executed")
            out.traceExecuted = v;
    }
    return out;
}

void
expectEquivalent(const Scenario &sc, sim::VgConfig cfg,
                 const char *cfgName)
{
    Outcome off = runScenario(sc, cfg, false);
    Outcome on = runScenario(sc, cfg, true);

    ASSERT_EQ(off.results.size(), on.results.size());
    for (size_t i = 0; i < off.results.size(); i++) {
        SCOPED_TRACE(std::string(sc.name) + "/" + cfgName + " call " +
                     std::to_string(i));
        EXPECT_EQ(off.results[i].ok, on.results[i].ok);
        EXPECT_EQ(off.results[i].value, on.results[i].value);
        EXPECT_EQ(off.results[i].fault, on.results[i].fault);
        EXPECT_EQ(off.results[i].instsExecuted,
                  on.results[i].instsExecuted);
    }
    EXPECT_EQ(off.cycles, on.cycles)
        << sc.name << "/" << cfgName << ": cycle counts diverge";
    EXPECT_EQ(off.execStats, on.execStats)
        << sc.name << "/" << cfgName << ": exec.* stats diverge";
    EXPECT_EQ(off.tracesFormed, 0u);
}

/** Drive one module hot and hand back the rig pieces the caller
 *  needs; asserts at least one trace formed. */
struct HotRig
{
    sim::SimContext ctx;
    Translator translator;
    FlatPort port;
    ExternTable externs;
    std::shared_ptr<const MachineImage> base;
    std::unique_ptr<Executor> exec;

    explicit HotRig(sim::VgConfig cfg = sim::VgConfig::full())
        : ctx([&cfg] {
              cfg.traceHotThreshold = kHotThreshold;
              return cfg;
          }()),
          translator(kKey, ctx)
    {}

    void
    runHot(const char *src, const char *fn,
           const std::vector<uint64_t> &args, int passes = 3)
    {
        auto tr = translator.translateText(src, kCodeBase);
        ASSERT_TRUE(tr.ok) << tr.error;
        base = tr.image;
        exec = std::make_unique<Executor>(*base, port, externs, ctx,
                                          kStackBase, kStackSize);
        exec->enableTraceTier(translator);
        for (int i = 0; i < passes; i++)
            exec->call(fn, args);
    }

    uint64_t
    stat(const std::string &name)
    {
        auto it = ctx.stats().all().find(name);
        return it == ctx.stats().all().end() ? 0 : it->second;
    }
};

// ---------------------------------------------------------------------
// Differential equivalence: trace-on must be bit-identical to the
// pure interpreter in results, faults, instruction counts, cycle
// counts and exec.* stats — across configs.
// ---------------------------------------------------------------------

TEST(TraceEquivalenceSweep, FullConfig)
{
    for (const Scenario &sc : corpus())
        expectEquivalent(sc, sim::VgConfig::full(), "full");
}

TEST(TraceEquivalenceSweep, UnfusedMasks)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.fuseSandboxMasks = false;
    for (const Scenario &sc : corpus())
        expectEquivalent(sc, cfg, "unfused");
}

TEST(TraceEquivalenceSweep, NativeConfig)
{
    for (const Scenario &sc : corpus())
        expectEquivalent(sc, sim::VgConfig::native(), "native");
}

/** The sweep must not be vacuous: the hot scenarios really form and
 *  execute traces under the tier. */
TEST(TraceEquivalenceSweep, TierRunsActuallyTrace)
{
    size_t traced = 0;
    for (const Scenario &sc : corpus()) {
        Outcome on = runScenario(sc, sim::VgConfig::full(), true);
        if (on.tracesFormed > 0 && on.traceExecuted > 0)
            traced++;
    }
    EXPECT_GE(traced, 5u) << "most corpus scenarios should trace";
}

// ---------------------------------------------------------------------
// Formation: metadata, stats, signatures, caching, and the knobs
// that keep the tier off.
// ---------------------------------------------------------------------

TEST(TraceFormation, HotLoopFormsVerifiedSignedTrace)
{
    HotRig rig;
    rig.runHot(kMemLoop, "memsum", {4096, 400});
    ASSERT_GT(rig.exec->tracesFormed(), 0u);

    const MachineImage &img = rig.exec->currentImage();
    ASSERT_FALSE(img.traces.empty());
    const TraceInfo &t = img.traces.front();
    EXPECT_EQ(t.home, "memsum");
    EXPECT_FALSE(t.name.empty());
    EXPECT_GT(t.length, 0u);
    EXPECT_TRUE(img.contains(t.anchorAddr));
    EXPECT_TRUE(img.contains(t.entryAddr));
    EXPECT_GE(t.foldSavings(), 1u)
        << "a loop trace folds at least its back-edge dispatch";
    // The trace block is registered as a pseudo-function and the
    // spliced image carries a fresh valid signature.
    EXPECT_EQ(img.functions.count(t.name), 1u);
    EXPECT_TRUE(rig.translator.verifySignature(img));

    EXPECT_GE(rig.stat("trace.formed"), 1u);
    EXPECT_GE(rig.stat("trace.executed"), 1u);
    EXPECT_GT(rig.stat("trace.retired_insts"), 0u);
    EXPECT_GE(rig.stat("translator.traces_spliced"), 1u);
    EXPECT_EQ(rig.stat("translator.splice_rejected"), 0u);
}

TEST(TraceFormation, SideExitsAreCounted)
{
    HotRig rig;
    rig.runHot(kBranchyLoop, "branchy", {300});
    ASSERT_GT(rig.exec->tracesFormed(), 0u);
    EXPECT_GT(rig.stat("trace.side_exits"), 0u)
        << "the parity branch must leave the trace on one arm";
}

TEST(TraceFormation, RepeatSpliceIsServedFromSignedCache)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.traceHotThreshold = kHotThreshold;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kSumLoop, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;

    FlatPort port;
    ExternTable externs;
    Executor a(*tr.image, port, externs, ctx, kStackBase, kStackSize);
    a.enableTraceTier(translator);
    for (int i = 0; i < 3; i++)
        a.call("sum", {300});
    ASSERT_GT(a.tracesFormed(), 0u);
    uint64_t hits = translator.cacheHits();

    // A second executor over the same base forms the same trace; the
    // splice must come out of the generation-keyed cache.
    Executor b(*tr.image, port, externs, ctx, kStackBase, kStackSize);
    b.enableTraceTier(translator);
    for (int i = 0; i < 3; i++)
        b.call("sum", {300});
    ASSERT_GT(b.tracesFormed(), 0u);
    EXPECT_GT(translator.cacheHits(), hits);
    EXPECT_EQ(b.currentImage().traces.size(),
              a.currentImage().traces.size());
}

TEST(TraceFormation, ConfigKnobDisablesTier)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.traceTier = false;
    cfg.traceHotThreshold = kHotThreshold;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kSumLoop, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    FlatPort port;
    ExternTable externs;
    Executor exec(*tr.image, port, externs, ctx, kStackBase,
                  kStackSize);
    exec.enableTraceTier(translator); // must be a no-op
    for (int i = 0; i < 3; i++)
        exec.call("sum", {300});
    EXPECT_EQ(exec.tracesFormed(), 0u);
}

TEST(TraceFormation, EnvKnobDisablesTier)
{
    setenv("VG_DISABLE_TRACE_TIER", "1", 1);
    HotRig rig;
    rig.runHot(kSumLoop, "sum", {300});
    unsetenv("VG_DISABLE_TRACE_TIER");
    EXPECT_EQ(rig.exec->tracesFormed(), 0u);
}

// ---------------------------------------------------------------------
// Verifier gate: trace-targeted miscompiles on a genuinely spliced
// image must be detected 100% (and the clean spliced image must
// verify with zero findings); a splice the verifier rejects is
// refused by the translator and never adopted by the executor.
// ---------------------------------------------------------------------

TEST(TraceMinjectSweep, SplicedImageVerifiesClean)
{
    HotRig rig;
    rig.runHot(kMemLoop, "memsum", {4096, 400});
    ASSERT_FALSE(rig.exec->currentImage().traces.empty());
    McodeVerifier verifier{McodePolicy{}};
    McodeVerifyResult res = verifier.verify(rig.exec->currentImage());
    EXPECT_TRUE(res.ok()) << res.message();
}

TEST(TraceMinjectSweep, EveryTraceMiscompileIsDetected)
{
    HotRig rig;
    rig.runHot(kMemLoop, "memsum", {4096, 400});
    const MachineImage &img = rig.exec->currentImage();
    ASSERT_FALSE(img.traces.empty());

    McodeVerifier verifier{McodePolicy{}};
    const Miscompile kinds[] = {Miscompile::TraceExitHijack,
                                Miscompile::TraceDropMask,
                                Miscompile::TraceStripHeadLabel};
    size_t injected = 0, detected = 0;
    for (Miscompile kind : kinds) {
        auto sites = miscompileSites(img, kind);
        EXPECT_FALSE(sites.empty())
            << miscompileName(kind) << ": no sites on a spliced image";
        for (size_t s = 0; s < sites.size(); s++) {
            MachineImage bad = img;
            ASSERT_TRUE(injectMiscompile(bad, kind, s));
            injected++;
            if (!verifier.verify(bad).ok())
                detected++;
            else
                ADD_FAILURE() << miscompileName(kind) << " site " << s
                              << " went undetected";
        }
    }
    EXPECT_GT(injected, 0u);
    EXPECT_EQ(detected, injected);
}

TEST(TraceGate, UnverifiableSpliceIsRefusedAndNeverAdopted)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.traceHotThreshold = kHotThreshold;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kMemLoop, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;

    // From here on, every freshly laid-out image (i.e. every splice
    // attempt — the base is already translated) is miscompiled.
    translator.setPostLayoutHook([](MachineImage &img) {
        if (img.traces.empty())
            return;
        for (Miscompile kind : {Miscompile::TraceExitHijack,
                                Miscompile::TraceStripHeadLabel,
                                Miscompile::TraceDropMask})
            if (injectMiscompile(img, kind, 0))
                return;
    });

    FlatPort port;
    ExternTable externs;
    Executor exec(*tr.image, port, externs, ctx, kStackBase,
                  kStackSize);
    exec.enableTraceTier(translator);
    ExecResult last;
    for (int i = 0; i < 4; i++)
        last = exec.call("memsum", {4096, 400});

    // The hijacked splice was refused: no trace adopted, execution
    // stayed on the (still correct) interpreter.
    EXPECT_EQ(exec.tracesFormed(), 0u);
    EXPECT_TRUE(exec.currentImage().traces.empty());
    EXPECT_TRUE(last.ok);

    const auto &stats = ctx.stats().all();
    auto get = [&](const char *k) {
        auto it = stats.find(k);
        return it == stats.end() ? uint64_t(0) : it->second;
    };
    EXPECT_GE(get("translator.mverify_rejected"), 1u);
    EXPECT_GE(get("trace.rejected"), 1u);
    EXPECT_EQ(get("translator.traces_spliced"), 0u);

    // And the refused image was never signed/cached: clearing the
    // hook, a fresh executor splices cleanly with no cache hit from
    // the poisoned attempt.
    translator.setPostLayoutHook(nullptr);
    Executor fresh(*tr.image, port, externs, ctx, kStackBase,
                   kStackSize);
    fresh.enableTraceTier(translator);
    for (int i = 0; i < 3; i++)
        fresh.call("memsum", {4096, 400});
    EXPECT_GT(fresh.tracesFormed(), 0u);
    EXPECT_TRUE(translator.verifySignature(fresh.currentImage()));
}

// ---------------------------------------------------------------------
// VG-TR rules on hand-built spliced images: deterministic single-rule
// triggers the generated-corpus sweep cannot isolate.
// ---------------------------------------------------------------------

/**
 * Minimal hand-built image with one home function and one linear
 * trace block (policy: sandbox only, no CFI, so no labels are
 * needed). The block is linear — its tail jumps back into home
 * rather than looping — so a clobber planted in the patch slot never
 * reaches the block's own store and only the side-exit rule can see
 * it.
 *
 *   home @f                       trace block f$tr0 (anchor = idx 2)
 *   0: ConstI  r1, #addr          7: Store  [r2] <- r3
 *   1: SandboxAddr r2 <- r1       8: Mov    r3 <- r3   (patch slot)
 *   2: Store  [r2] <- r3   <---   9: JumpIfZero r4 -> addr(6)  (exit)
 *   3: JumpIfZero r4 -> addr(6)  10: Jump -> addr(3)  (continue in home)
 *   4: Jump -> addr(2)
 *   5: Ret   (unreachable)
 *   6: Ret
 */
MachineImage
handBuiltTraceImage()
{
    MachineImage img;
    img.moduleName = "hand";
    img.codeBase = kCodeBase;

    auto at = [&](uint32_t idx) {
        return img.codeBase + idx * mInstBytes;
    };
    auto emit = [&](MOp op, int dst, int a, int b, uint64_t imm) {
        MInst m;
        m.op = op;
        m.dst = dst;
        m.a = a;
        m.b = b;
        m.imm = imm;
        img.code.push_back(m);
    };

    emit(MOp::ConstI, 1, -1, -1, 0x5000);      // 0
    emit(MOp::SandboxAddr, 2, 1, -1, 0);       // 1
    emit(MOp::Store, -1, 2, 3, 0);             // 2  anchor
    emit(MOp::JumpIfZero, -1, 4, -1, at(6));   // 3
    emit(MOp::Jump, -1, -1, -1, at(2));        // 4
    emit(MOp::Ret, -1, 0, -1, 0);              // 5
    emit(MOp::Ret, -1, 0, -1, 0);              // 6
    emit(MOp::Store, -1, 2, 3, 0);             // 7  block head
    emit(MOp::Mov, 3, 3, -1, 0);               // 8  patch slot
    emit(MOp::JumpIfZero, -1, 4, -1, at(6));   // 9  side exit
    emit(MOp::Jump, -1, -1, -1, at(3));        // 10 continue in home

    FuncInfo f;
    f.name = "f";
    f.entryAddr = at(0);
    f.numParams = 0;
    f.numRegs = 5;
    img.functions["f"] = f;

    FuncInfo tf;
    tf.name = "f$tr0";
    tf.entryAddr = at(7);
    tf.numParams = 0;
    tf.numRegs = 5;
    img.functions["f$tr0"] = tf;

    TraceInfo t;
    t.name = "f$tr0";
    t.home = "f";
    t.anchorAddr = at(2);
    t.entryAddr = at(7);
    t.length = 4;
    t.guards = 1;
    img.traces.push_back(t);

    img.instrumented = true;
    return img;
}

McodePolicy
sandboxOnlyPolicy()
{
    McodePolicy p;
    p.requireSandbox = true;
    p.requireCfi = false;
    return p;
}

bool
hasRule(const McodeVerifyResult &res, MRule rule)
{
    for (const McodeFinding &f : res.findings)
        if (f.rule == rule)
            return true;
    return false;
}

TEST(TraceRules, HandBuiltImageVerifiesClean)
{
    MachineImage img = handBuiltTraceImage();
    McodeVerifier verifier(sandboxOnlyPolicy());
    McodeVerifyResult res = verifier.verify(img);
    EXPECT_TRUE(res.ok()) << res.message();
}

TEST(TraceRules, SideExitEscapeVgTr01)
{
    MachineImage img = handBuiltTraceImage();
    // Retarget the guard's side exit past the end of the image.
    img.code[9].imm = img.codeEnd();
    McodeVerifier verifier(sandboxOnlyPolicy());
    McodeVerifyResult res = verifier.verify(img);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, MRule::SideExitEscape)) << res.message();
}

TEST(TraceRules, SideExitWeakerStateVgTr02)
{
    MachineImage img = handBuiltTraceImage();
    // Clobber the masked address register between its in-trace use and
    // the side exit: the trace itself makes no further access (so no
    // VG-SB-01), but the interpreter resumes at a point whose proof
    // assumed r2 masked.
    img.code[8] = MInst{};
    img.code[8].op = MOp::ConstI;
    img.code[8].dst = 2;
    img.code[8].imm = 0;
    McodeVerifier verifier(sandboxOnlyPolicy());
    McodeVerifyResult res = verifier.verify(img);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, MRule::SideExitWeakerState))
        << res.message();
    EXPECT_FALSE(hasRule(res, MRule::UnmaskedAccess)) << res.message();
}

TEST(TraceRules, UntraceableOpVgTr03)
{
    MachineImage img = handBuiltTraceImage();
    img.code[8] = MInst{};
    img.code[8].op = MOp::CallDirect;
    img.code[8].dst = 3;
    img.code[8].imm = img.codeBase; // call @f
    McodeVerifier verifier(sandboxOnlyPolicy());
    McodeVerifyResult res = verifier.verify(img);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, MRule::TraceBadOp)) << res.message();
}

TEST(TraceRules, MissingHomeFunctionIsRejected)
{
    MachineImage img = handBuiltTraceImage();
    img.traces[0].home = "ghost";
    McodeVerifier verifier(sandboxOnlyPolicy());
    McodeVerifyResult res = verifier.verify(img);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, MRule::SideExitEscape)) << res.message();
}

// ---------------------------------------------------------------------
// Fuel budget: the budget counts modeled machine instructions and is
// never overshot, even when a single dispatch retires a fused
// 13-instruction mask sequence or a whole trace iteration.
// ---------------------------------------------------------------------

TEST(FuelBudget, FusedDispatchNeverOvershoots)
{
    sim::VgConfig cfg = sim::VgConfig::full(); // fused masks: cost 13
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kMemLoop, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    FlatPort port;
    ExternTable externs;

    Executor probe(*tr.image, port, externs, ctx, kStackBase,
                   kStackSize);
    ExecResult full = probe.call("memsum", {4096, 6});
    ASSERT_TRUE(full.ok);
    const uint64_t need = full.instsExecuted;
    ASSERT_GT(need, 13u);

    for (uint64_t fuel = 1; fuel <= need + 1; fuel++) {
        Executor exec(*tr.image, port, externs, ctx, kStackBase,
                      kStackSize);
        exec.setFuel(fuel);
        ExecResult r = exec.call("memsum", {4096, 6});
        ASSERT_LE(r.instsExecuted, fuel)
            << "budget overshot at fuel=" << fuel;
        if (fuel < need) {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.fault, ExecFault::FuelExhausted);
        } else {
            EXPECT_TRUE(r.ok);
            EXPECT_EQ(r.instsExecuted, need);
        }
    }
}

TEST(FuelBudget, TraceTierRespectsBudgetExactly)
{
    // With the tier on and blocks hot, exhaustion inside a trace must
    // report the same count/fault as the interpreter (covered by the
    // sweep) and never exceed the budget.
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.traceHotThreshold = kHotThreshold;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kSumLoop, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    FlatPort port;
    ExternTable externs;
    Executor exec(*tr.image, port, externs, ctx, kStackBase,
                  kStackSize);
    exec.enableTraceTier(translator);
    for (int i = 0; i < 3; i++)
        exec.call("sum", {400});
    ASSERT_GT(exec.tracesFormed(), 0u);

    exec.setFuel(777);
    ExecResult r = exec.call("sum", {1u << 20});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, ExecFault::FuelExhausted);
    EXPECT_LE(r.instsExecuted, 777u);
}

} // namespace
