/**
 * @file
 * Edge cases and failure injection: executor widths/recursion/stack
 * limits, ghost-memory exhaustion, cache pressure, kill-while-blocked,
 * wrap-around and boundary conditions.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "ghost/runtime.hh"
#include "kernel/system.hh"
#include "vir/builder.hh"

using namespace vg;
using namespace vg::cc;
using namespace vg::kern;

namespace
{

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
constexpr uint64_t kStackBase = 0xffffffa000000000ull;

class FlatPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned bytes, uint64_t &out) override
    {
        out = 0;
        for (unsigned i = 0; i < bytes; i++) {
            auto it = mem.find(va + i);
            out |= uint64_t(it == mem.end() ? 0 : it->second)
                   << (8 * i);
        }
        return true;
    }

    bool
    write(uint64_t va, unsigned bytes, uint64_t val) override
    {
        for (unsigned i = 0; i < bytes; i++)
            mem[va + i] = uint8_t(val >> (8 * i));
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        for (uint64_t i = 0; i < len; i++) {
            uint64_t b;
            read(src + i, 1, b);
            write(dst + i, 1, b);
        }
        return true;
    }

    std::map<uint64_t, uint8_t> mem;
};

ExecResult
runSrc(const char *src, const std::string &fn,
       const std::vector<uint64_t> &args,
       sim::VgConfig cfg = sim::VgConfig::native())
{
    sim::SimContext ctx(cfg);
    Translator tr(std::vector<uint8_t>(32, 3), ctx);
    auto t = tr.translateText(src, kCodeBase);
    EXPECT_TRUE(t.ok) << t.error;
    FlatPort port;
    ExternTable externs;
    Executor exec(*t.image, port, externs, ctx, kStackBase, 1 << 20);
    return exec.call(fn, args);
}

} // namespace

// --------------------------------------------------------------------
// Executor edges
// --------------------------------------------------------------------

TEST(ExecEdge, NarrowWidthsTruncateAndZeroExtend)
{
    const char *src = R"(
func @f(1) {
entry:
  %1 = alloca 16
  store.i8 %1, %0
  %2 = load.i8 %1
  store.i16 %1, %0
  %3 = load.i16 %1
  store.i32 %1, %0
  %4 = load.i32 %1
  %5 = const 0
  %6 = shl %3, %5
  %7 = add %2, %6
  %8 = add %7, %4
  ret %8
}
)";
    auto r = runSrc(src, "f", {0x1234567890abcdefull});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 0xefull + 0xcdefull + 0x90abcdefull);
}

TEST(ExecEdge, ArithmeticWrapsModulo64)
{
    const char *src = R"(
func @f(2) {
entry:
  %2 = add %0, %1
  %3 = mul %0, %1
  %4 = sub %2, %3
  ret %4
}
)";
    uint64_t a = ~0ull, b = 2;
    auto r = runSrc(src, "f", {a, b});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, (a + b) - (a * b));
}

TEST(ExecEdge, AshrSignExtends)
{
    const char *src = R"(
func @f(2) {
entry:
  %2 = ashr %0, %1
  ret %2
}
)";
    auto r = runSrc(src, "f", {0x8000000000000000ull, 63});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, ~0ull);
    auto r2 = runSrc(src, "f", {0x4000000000000000ull, 62});
    EXPECT_EQ(r2.value, 1u);
}

TEST(ExecEdge, DeepRecursionHitsStackLimit)
{
    const char *src = R"(
func @down(1) {
entry:
  %1 = alloca 4096
  %2 = const 0
  %3 = icmp eq %0, %2
  condbr %3, base, rec
base:
  ret %0
rec:
  %4 = const 1
  %5 = sub %0, %4
  %6 = call @down(%5)
  ret %6
}
)";
    // 1 MB stack, ~4 KB frames: a few hundred levels fit, 10000 don't.
    auto ok = runSrc(src, "down", {100});
    EXPECT_TRUE(ok.ok) << ok.detail;
    auto deep = runSrc(src, "down", {10000});
    EXPECT_FALSE(deep.ok);
    EXPECT_EQ(deep.fault, ExecFault::StackOverflow);
}

TEST(ExecEdge, MemcpyZeroAndOverlap)
{
    const char *src = R"(
func @f(0) {
entry:
  %0 = alloca 64
  %1 = const 0x1122334455667788
  store.i64 %0, %1
  %2 = const 0
  memcpy %0, %0, %2
  %3 = const 8
  %4 = add %0, %3
  %5 = const 16
  memcpy %4, %0, %3
  %6 = load.i64 %4
  ret %6
}
)";
    auto r = runSrc(src, "f", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 0x1122334455667788ull);
}

TEST(ExecEdge, UremAndShiftMasking)
{
    const char *src = R"(
func @f(2) {
entry:
  %2 = urem %0, %1
  %3 = const 70
  %4 = shl %2, %3      ; shift count masked to 6 bits -> << 6
  ret %4
}
)";
    auto r = runSrc(src, "f", {103, 10});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, uint64_t(3) << 6);
}

TEST(ExecEdge, CallindWithWrongArgCountStillRuns)
{
    // Extra args are dropped; missing args read as zero (C ABI-ish).
    const char *src = R"(
func @takes2(2) {
entry:
  %2 = add %0, %1
  ret %2
}

func @f(0) {
entry:
  %0 = funcaddr @takes2
  %1 = const 5
  %2 = callind %0(%1)
  ret %2
}
)";
    auto r = runSrc(src, "f", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 5u);
}

// --------------------------------------------------------------------
// Kernel failure injection
// --------------------------------------------------------------------

namespace
{

SystemConfig
tinyConfig(uint64_t frames)
{
    SystemConfig cfg;
    cfg.memFrames = frames;
    cfg.diskBlocks = 2048;
    cfg.rsaBits = 384;
    return cfg;
}

} // namespace

TEST(KernelEdge, GhostAllocationExhaustionIsGraceful)
{
    System sys(tinyConfig(512)); // 2 MB RAM
    sys.boot();
    sys.runProcess("hog", [](UserApi &api) {
        // Grab ghost memory until the OS runs out of frames; the
        // failing allocgm must return 0, not corrupt state.
        uint64_t got = 0;
        while (true) {
            hw::Vaddr va = api.allocGhost(16);
            if (va == 0)
                break;
            got += 16;
        }
        EXPECT_GT(got, 0u);
        // Subsequent small allocation also fails cleanly.
        EXPECT_EQ(api.allocGhost(1), 0u);
        return 0;
    });
    // Violations were recorded but nothing crashed.
    EXPECT_GT(sys.vm().violationCount(), 0u);
}

TEST(KernelEdge, KillWhileBlockedInAccept)
{
    System sys(tinyConfig(4096));
    sys.boot();
    int code = sys.runProcess("main", [](UserApi &api) {
        uint64_t victim = api.fork([](UserApi &capi) {
            int ls = capi.socket();
            capi.bind(ls, 7000);
            capi.listen(ls);
            capi.accept(ls); // blocks forever
            return 1;
        });
        for (int i = 0; i < 3; i++)
            api.yield();
        api.kill(victim, 9);
        int status = -1;
        api.waitpid(victim, status);
        return status;
    });
    EXPECT_EQ(code, 137);
}

TEST(KernelEdge, ZeroByteIo)
{
    System sys(tinyConfig(4096));
    sys.boot();
    sys.runProcess("zero", [](UserApi &api) {
        int fd = api.open("/z", true);
        hw::Vaddr buf = api.mmap(4096);
        EXPECT_EQ(api.write(fd, buf, 0), 0);
        EXPECT_EQ(api.read(fd, buf, 0), 0);
        api.close(fd);
        return 0;
    });
}

TEST(KernelEdge, BadFdsRejected)
{
    System sys(tinyConfig(4096));
    sys.boot();
    sys.runProcess("badfd", [](UserApi &api) {
        hw::Vaddr buf = api.mmap(4096);
        EXPECT_EQ(api.read(99, buf, 8), -1);
        EXPECT_EQ(api.write(-1, buf, 8), -1);
        EXPECT_EQ(api.close(42), -1);
        EXPECT_EQ(api.lseek(5, 0, 0), -1);
        EXPECT_EQ(api.accept(7), -1);
        return 0;
    });
}

TEST(KernelEdge, ConnectToClosedPortFails)
{
    System sys(tinyConfig(4096));
    sys.boot();
    sys.runProcess("noconn", [](UserApi &api) {
        EXPECT_EQ(api.connect(12345), -1);
        return 0;
    });
}

TEST(KernelEdge, UnmappedUserAccessFails)
{
    System sys(tinyConfig(4096));
    sys.boot();
    sys.runProcess("wild", [](UserApi &api) {
        uint64_t v = 0;
        // No area reserved at this address: fault not resolvable.
        EXPECT_FALSE(api.peek(0x00005555deadb000ull, 8, v));
        EXPECT_FALSE(api.poke(0x00005555deadb000ull, 8, 1));
        return 0;
    });
}

TEST(KernelEdge, MunmapWrongLengthRejected)
{
    System sys(tinyConfig(4096));
    sys.boot();
    sys.runProcess("badun", [](UserApi &api) {
        hw::Vaddr va = api.mmap(4 * 4096);
        EXPECT_EQ(api.munmap(va, 2 * 4096), -1); // partial unmap
        EXPECT_EQ(api.munmap(va + 4096, 4 * 4096), -1);
        EXPECT_EQ(api.munmap(va, 4 * 4096), 0);
        return 0;
    });
}

TEST(KernelEdge, ForkBombBounded)
{
    System sys(tinyConfig(2048));
    sys.boot();
    int code = sys.runProcess("bomb", [](UserApi &api) {
        // Many sequential fork/waits: table frames must be recycled
        // or this exhausts 8 MB of RAM quickly.
        for (int i = 0; i < 120; i++) {
            uint64_t child = api.fork([](UserApi &capi) {
                hw::Vaddr va = capi.mmap(4096);
                capi.poke(va, 8, 1);
                return 0;
            });
            int status = -1;
            api.waitpid(child, status);
            if (status != 0)
                return 1;
        }
        return 0;
    });
    EXPECT_EQ(code, 0);
}

TEST(KernelEdge, SecureFileGarbageRejected)
{
    System sys(tinyConfig(4096));
    sys.boot();
    crypto::AesKey key{};
    sva::AppBinary bin = sys.vm().packageApp("a", "c", key);
    // Plant garbage where a sealed file is expected.
    Ino ino = 0;
    sys.kernel().fs().create("/garbage", ino);
    sys.kernel().fs().write(ino, 0, "short", 5);

    sys.runProcess("g", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            vg::ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> out;
            EXPECT_FALSE(rt.readSecureFile("/garbage", out));
            EXPECT_FALSE(rt.readSecureFile("/nonexistent", out));
            return 0;
        });
    });
}
