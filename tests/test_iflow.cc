/**
 * @file
 * Information-flow verifier tests.
 *
 * IflowVerifySweep is the PR's acceptance property: across a corpus of
 * ghost-handling modules and every instrumentation configuration, the
 * clean compiler produces 0 findings, while every injected leak
 * miscompile (every iflow kind at every site, fused and unfused, plus
 * the trace-smuggle kind on spliced images) is detected — and each of
 * those injected images still passes the McodeVerifier, proving the
 * two verifiers check disjoint properties. The remaining tests pin
 * down the five rules individually, the translator/kernel gating, the
 * trace-splice re-verification and the stats surface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/exec.hh"
#include "compiler/iflow.hh"
#include "compiler/minject.hh"
#include "compiler/mverify.hh"
#include "compiler/translator.hh"
#include "hw/layout.hh"
#include "kernel/system.hh"
#include "sim/context.hh"

using namespace vg;
using namespace vg::cc;

namespace
{

/** The trace-splice tests need the tier available regardless of the
 *  harness environment (CI re-runs tier-1 under
 *  VG_DISABLE_TRACE_TIER=1 as an A/B). */
const int kEnvCleared = [] {
    unsetenv("VG_DISABLE_TRACE_TIER");
    return 0;
}();

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
constexpr uint64_t kStackBase = 0xffffffa000000000ull;
constexpr uint64_t kStackSize = 1 << 20;
const std::vector<uint8_t> kKey(32, 0x11);
constexpr unsigned kHotThreshold = 8;

/** Sparse flat memory that never faults — the kernel's memory view. */
class FlatPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned bytes, uint64_t &out) override
    {
        out = 0;
        for (unsigned i = 0; i < bytes; i++)
            out |= uint64_t(byteAt(va + i)) << (8 * i);
        return true;
    }

    bool
    write(uint64_t va, unsigned bytes, uint64_t val) override
    {
        for (unsigned i = 0; i < bytes; i++)
            _mem[va + i] = uint8_t(val >> (8 * i));
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        for (uint64_t i = 0; i < len; i++)
            _mem[dst + i] = byteAt(src + i);
        return true;
    }

  private:
    uint8_t
    byteAt(uint64_t va) const
    {
        auto it = _mem.find(va);
        return it == _mem.end() ? 0 : it->second;
    }

    std::map<uint64_t, uint8_t> _mem;
};

// ---------------------------------------------------------------------
// Clean ghost-handling corpus: every module reads ghost data and moves
// it to an OS-visible channel, but always through a declassifier —
// zero findings expected under every configuration.
// ---------------------------------------------------------------------

const char *kGhostCorpus[] = {
    // source -> seal -> NIC sink
    R"(
func @beacon(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @sva_seal(%1)
  %3 = call @k_nic_tx(%2)
  ret %3
}
)",
    // spill through the frame, seal, write the swap window + slot
    R"(
func @swap_out(2) {
entry:
  %2 = call @sva_ghost_read(%0)
  %3 = alloca 8
  store.i64 %3, %2
  %4 = load.i64 %3
  %5 = call @sva_seal(%4)
  %6 = call @k_swap_slot_ptr(%1)
  store.i64 %6, %5
  %7 = call @k_swap_store(%1, %5)
  ret %7
}
)",
    // taint through call-return + arithmetic, HMAC declassifies, and a
    // stat sink fed a clean value while taint is live in registers
    R"(
func @fetch(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  ret %1
}

func @report(2) {
entry:
  %2 = call @fetch(%0)
  %3 = add %2, %1
  %4 = call @sva_hmac(%3)
  %5 = call @k_disk_write(%1, %4)
  %6 = call @k_stat_add(%1)
  ret %5
}
)",
    // a ghost pointer walked with arithmetic; the sandbox mask (or the
    // explicit source rule under native) covers the load either way
    R"(
func @reader(1) {
entry:
  %1 = call @sva_ghost_ptr()
  %2 = add %1, %0
  %3 = load.i64 %2
  %4 = call @sva_seal(%3)
  %5 = call @klog(%4)
  ret %5
}
)",
};

/** Hot loop for the trace tests: taint (%2) stays live across the
 *  loop while the loop body stores only the sealed value. */
const char *kHotGhost = R"(
func @hotstream(2) {
entry:
  %2 = call @sva_ghost_read(%0)
  %3 = call @sva_seal(%2)
  %4 = const 0
  br head
head:
  %5 = icmp ult %4, %1
  condbr %5, body, done
body:
  %6 = const 8
  %7 = mul %4, %6
  %8 = add %0, %7
  store.i64 %8, %3
  %9 = const 1
  %4 = add %4, %9
  br head
done:
  ret %3
}
)";

struct NamedConfig
{
    const char *name;
    sim::VgConfig cfg;
};

std::vector<NamedConfig>
allConfigs()
{
    std::vector<NamedConfig> out;
    out.push_back({"full-fused", sim::VgConfig::full()});
    sim::VgConfig c = sim::VgConfig::full();
    c.fuseSandboxMasks = false;
    out.push_back({"full-unfused", c});
    c = sim::VgConfig::full();
    c.sandboxMemory = false;
    out.push_back({"cfi-only", c});
    c = sim::VgConfig::full();
    c.cfi = false;
    out.push_back({"sandbox-only-fused", c});
    c.fuseSandboxMasks = false;
    out.push_back({"sandbox-only-unfused", c});
    out.push_back({"native", sim::VgConfig::native()});
    return out;
}

/** Translate under @p cfg with both verifier gates disabled, so the
 *  sweeps can inject leaks and verify explicitly. */
std::shared_ptr<const MachineImage>
compileUngated(const char *text, sim::VgConfig cfg)
{
    cfg.verifyMcode = false;
    cfg.verifyIflow = false;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(text, kCodeBase);
    EXPECT_TRUE(tr.ok) << tr.error;
    return tr.image;
}

bool
hasRule(const IflowResult &res, IfRule rule)
{
    return std::any_of(res.findings.begin(), res.findings.end(),
                       [&](const IflowFinding &f) {
                           return f.rule == rule;
                       });
}

const std::vector<Miscompile> kIflowKinds = {
    Miscompile::IflowDropSeal,
    Miscompile::IflowRawStore,
    Miscompile::IflowStatLeak,
};

/** Drives a module hot enough to splice traces. */
struct HotRig
{
    sim::SimContext ctx;
    Translator translator;
    FlatPort port;
    ExternTable externs;
    std::shared_ptr<const MachineImage> base;
    std::unique_ptr<Executor> exec;

    explicit HotRig(sim::VgConfig cfg = sim::VgConfig::full())
        : ctx([&cfg] {
              cfg.traceHotThreshold = kHotThreshold;
              return cfg;
          }()),
          translator(kKey, ctx)
    {
        // The ghost intrinsics, modeled deterministically (the same
        // shapes the kernel's module API exposes).
        auto mix = [](uint64_t x) {
            x += 0x9e3779b97f4a7c15ull;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            return x ^ (x >> 31);
        };
        externs.fns["sva_ghost_read"] =
            [mix](const std::vector<uint64_t> &a) {
                return mix(a.empty() ? 0 : a[0]);
            };
        externs.fns["sva_seal"] =
            [mix](const std::vector<uint64_t> &a) {
                return mix((a.empty() ? 0 : a[0]) ^
                           0x5ea15ea15ea15ea1ull);
            };
        externs.fns["k_nic_tx"] =
            [](const std::vector<uint64_t> &) { return uint64_t(0); };
    }

    void
    runHot(const char *src, const char *fn,
           const std::vector<uint64_t> &args, int passes = 3)
    {
        auto tr = translator.translateText(src, kCodeBase);
        ASSERT_TRUE(tr.ok) << tr.error;
        base = tr.image;
        exec = std::make_unique<Executor>(*base, port, externs, ctx,
                                          kStackBase, kStackSize);
        exec->enableTraceTier(translator);
        for (int i = 0; i < passes; i++)
            exec->call(fn, args);
    }
};

} // namespace

// ---------------------------------------------------------------------
// Acceptance sweep
// ---------------------------------------------------------------------

TEST(IflowVerifySweep, CleanCorpusHasZeroFindingsUnderAllConfigs)
{
    for (const NamedConfig &nc : allConfigs()) {
        for (const char *text : kGhostCorpus) {
            sim::SimContext ctx(nc.cfg);
            Translator translator(kKey, ctx);
            auto tr = translator.translateText(text, kCodeBase);
            ASSERT_TRUE(tr.ok)
                << "config " << nc.name << ": " << tr.error;
            EXPECT_EQ(tr.iflow.findings.size(), 0u) << nc.name;
            EXPECT_GT(tr.iflow.functionsChecked, 0u) << nc.name;
            IflowVerifier verifier;
            auto res = verifier.verify(*tr.image);
            EXPECT_TRUE(res.ok()) << "config " << nc.name << ":\n"
                                  << res.message();
            EXPECT_EQ(res.instsChecked, tr.image->code.size());
        }
    }
}

TEST(IflowVerifySweep, EveryInjectedLeakIsDetected)
{
    // Fused and unfused pipelines, every iflow kind, every site, every
    // module: 100% detection by the IflowVerifier — while the
    // McodeVerifier stays green on the very same injected images (the
    // leak kinds are sandbox- and CFI-preserving by design).
    IflowVerifier verifier;
    McodeVerifier mverifier{McodePolicy{}};
    size_t injected = 0;
    std::map<Miscompile, size_t> perKind;

    for (bool fuse : {true, false}) {
        sim::VgConfig cfg = sim::VgConfig::full();
        cfg.fuseSandboxMasks = fuse;
        for (const char *text : kGhostCorpus) {
            auto image = compileUngated(text, cfg);
            ASSERT_TRUE(image);
            for (Miscompile kind : kIflowKinds) {
                size_t sites = miscompileSites(*image, kind).size();
                for (size_t s = 0; s < sites; s++) {
                    MachineImage bad = *image;
                    ASSERT_TRUE(injectMiscompile(bad, kind, s));
                    auto res = verifier.verify(bad);
                    EXPECT_FALSE(res.ok())
                        << miscompileName(kind) << " site " << s
                        << (fuse ? " (fused)" : " (unfused)")
                        << " went undetected on:\n"
                        << text;
                    auto mres = mverifier.verify(bad);
                    EXPECT_TRUE(mres.ok())
                        << miscompileName(kind) << " site " << s
                        << " should be invisible to mverify:\n"
                        << mres.message();
                    injected++;
                    perKind[kind]++;
                }
            }
        }
    }
    for (Miscompile kind : kIflowKinds)
        EXPECT_GT(perKind[kind], 0u)
            << "no sites for " << miscompileName(kind);
    EXPECT_GE(injected, 10u);
}

TEST(IflowVerifySweep, TraceSmuggleDetectedAtEverySite)
{
    // Form real spliced traces on the hot ghost module, then sweep the
    // trace-smuggle kind over every site in the spliced image.
    HotRig rig;
    rig.runHot(kHotGhost, "hotstream", {0x10000, 64}, 12);
    ASSERT_GT(rig.exec->tracesFormed(), 0u);
    const MachineImage &spliced = rig.exec->currentImage();
    ASSERT_FALSE(spliced.traces.empty());

    IflowVerifier verifier;
    EXPECT_TRUE(verifier.verify(spliced).ok());

    size_t sites =
        miscompileSites(spliced, Miscompile::IflowTraceSmuggle).size();
    ASSERT_GT(sites, 0u);
    McodeVerifier mverifier{McodePolicy{}};
    for (size_t s = 0; s < sites; s++) {
        MachineImage bad = spliced;
        ASSERT_TRUE(injectMiscompile(
            bad, Miscompile::IflowTraceSmuggle, s));
        auto res = verifier.verify(bad);
        EXPECT_FALSE(res.ok())
            << "trace-smuggle site " << s << " went undetected";
        auto mres = mverifier.verify(bad);
        EXPECT_TRUE(mres.ok())
            << "trace-smuggle site " << s
            << " should be invisible to mverify:\n"
            << mres.message();
    }
}

// ---------------------------------------------------------------------
// The five rules, individually
// ---------------------------------------------------------------------

TEST(IflowRules, DirectLeakToSink)
{
    auto image = compileUngated(R"(
func @leak(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_nic_tx(%1)
  ret %2
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::DirectLeak)) << res.message();
}

TEST(IflowRules, LeakViaSpilledTemp)
{
    auto image = compileUngated(R"(
func @spill(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = alloca 8
  store.i64 %2, %1
  %3 = load.i64 %2
  %4 = call @klog(%3)
  ret %4
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::SpillLeak)) << res.message();
}

TEST(IflowRules, LeakThroughCallReturn)
{
    auto image = compileUngated(R"(
func @helper(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  ret %1
}

func @caller(1) {
entry:
  %1 = call @helper(%0)
  %2 = call @k_disk_write(%0, %1)
  ret %2
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::CallLeak)) << res.message();
}

TEST(IflowRules, UnsealedSwapWrite)
{
    auto image = compileUngated(R"(
func @swapper(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_swap_store(%0, %1)
  ret %2
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::UnsealedSwap)) << res.message();
}

TEST(IflowRules, TaintLaunderedThroughArithmetic)
{
    auto image = compileUngated(R"(
func @launder(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = const 0x5a5a5a5a
  %3 = xor %1, %2
  %4 = call @k_nic_tx(%3)
  ret %4
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::ArithLeak)) << res.message();
}

TEST(IflowRules, UnknownExternsAreSinksByDefault)
{
    auto image = compileUngated(R"(
func @mystery_call(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @some_unannotated_entry(%1)
  ret %2
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    auto res = IflowVerifier{}.verify(*image);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.message().find("some_unannotated_entry"),
              std::string::npos)
        << res.message();
}

TEST(IflowRules, MaskedGhostLoadIsNotASource)
{
    // A load of a ghost-range constant: under the sandbox the mask
    // relocates the address out of the ghost half before the load, so
    // the loaded value is NOT ghost data (this is exactly the VG-SB
    // guarantee; iflow composes with it instead of double-reporting).
    // Under native the same module really does read ghost memory and
    // leaks it.
    const char *text = R"(
func @peek(0) {
entry:
  %0 = const 0xffffff0000001000
  %1 = load.i64 %0
  %2 = call @klog(%1)
  ret %2
}
)";
    auto sandboxed = compileUngated(text, sim::VgConfig::full());
    ASSERT_TRUE(sandboxed);
    EXPECT_TRUE(IflowVerifier{}.verify(*sandboxed).ok());

    auto native = compileUngated(text, sim::VgConfig::native());
    ASSERT_TRUE(native);
    auto res = IflowVerifier{}.verify(*native);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(hasRule(res, IfRule::DirectLeak)) << res.message();
}

// ---------------------------------------------------------------------
// mverify / iflow interaction: the two verifiers prove disjoint
// properties
// ---------------------------------------------------------------------

TEST(IflowInteraction, LeakyImagePassesMverifyButFailsIflow)
{
    auto image = compileUngated(R"(
func @leaky(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_nic_tx(%1)
  ret %2
}
)",
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    EXPECT_TRUE(McodeVerifier{McodePolicy{}}.verify(*image).ok());
    EXPECT_FALSE(IflowVerifier{}.verify(*image).ok());
}

TEST(IflowInteraction, UnmaskedImagePassesIflowButFailsMverify)
{
    // Dropping a sandbox mask breaks VG-SB but moves no ghost data:
    // iflow stays green, mverify goes red — the mirror image of the
    // test above.
    auto image = compileUngated(kGhostCorpus[1],
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    MachineImage bad = *image;
    ASSERT_GT(miscompileSites(bad, Miscompile::DropMask).size(), 0u);
    ASSERT_TRUE(injectMiscompile(bad, Miscompile::DropMask, 0));
    EXPECT_FALSE(McodeVerifier{McodePolicy{}}.verify(bad).ok());
    EXPECT_TRUE(IflowVerifier{}.verify(bad).ok());
}

// ---------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------

TEST(IflowGate, TranslatorRefusesAndNeverCachesLeakyModules)
{
    const char *leaky = R"(
func @leak(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_nic_tx(%1)
  ret %2
}
)";
    sim::SimContext ctx;
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(leaky, kCodeBase);
    EXPECT_FALSE(tr.ok);
    EXPECT_NE(tr.error.find("iflow verifier rejected"),
              std::string::npos)
        << tr.error;
    EXPECT_NE(tr.error.find("VG-IF-01"), std::string::npos)
        << tr.error;
    EXPECT_EQ(ctx.stats().get("translator.iflow_rejected"), 1u);
    EXPECT_GE(ctx.stats().get("iflow.findings"), 1u);

    // The refusal must not be cached either: a clean module still
    // translates, and retrying the leaky one refuses again rather
    // than serving anything from cache.
    auto again = translator.translateText(leaky, kCodeBase);
    EXPECT_FALSE(again.ok);
    EXPECT_FALSE(again.fromCache);
    auto ok = translator.translateText(kGhostCorpus[0], kCodeBase);
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.iflow.findings.size(), 0u);
}

TEST(IflowGate, KernelModuleLoadRefusesLeakyModules)
{
    kern::System sys;
    sys.boot();

    const char *leaky = R"(
func @exfiltrate(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_stat_add(%1)
  ret %2
}
)";
    std::string err;
    EXPECT_FALSE(sys.kernel().loadModule("evil", leaky, &err));
    EXPECT_NE(err.find("iflow verifier rejected"), std::string::npos)
        << err;
    EXPECT_NE(err.find("VG-IF-"), std::string::npos) << err;
    EXPECT_EQ(sys.ctx().stats().get("kernel.modules_loaded"), 0u);

    // A sealed version of the same flow loads AND runs against the
    // kernel's implementations of the intrinsic surface.
    EXPECT_TRUE(
        sys.kernel().loadModule("beacon", kGhostCorpus[0], &err))
        << err;
    EXPECT_EQ(sys.ctx().stats().get("kernel.modules_loaded"), 1u);
    auto r = sys.kernel().callModuleFunction("beacon", "beacon", {7});
    EXPECT_TRUE(r.ok) << r.detail;
    EXPECT_GE(sys.ctx().stats().get("kernel.module_ghost_reads"), 1u);
    EXPECT_GE(sys.ctx().stats().get("kernel.module_seals"), 1u);
    EXPECT_GE(sys.ctx().stats().get("kernel.module_nic_tx_words"),
              1u);
}

TEST(IflowGate, VerifyIflowKnobDisablesTheGate)
{
    const char *leaky = R"(
func @leak(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @k_nic_tx(%1)
  ret %2
}
)";
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.verifyIflow = false;
    sim::SimContext ctx(cfg);
    Translator translator(kKey, ctx);

    // With the knob off the leaky image sails through (the mcode gate
    // stays on — the module is sandbox/CFI clean)...
    auto tr = translator.translateText(leaky, kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_EQ(ctx.stats().get("iflow.functions"), 0u);

    // ...and an explicit verification shows what the gate would have
    // caught.
    auto res = IflowVerifier{}.verify(*tr.image);
    EXPECT_TRUE(hasRule(res, IfRule::DirectLeak)) << res.message();
}

TEST(IflowGate, SpliceAdoptionRerunsIflowOnSplicedBlocks)
{
    // A hostile trace builder smuggles taint into a superinstruction
    // block. The base translation is clean (the hook has no trace
    // sites there); every splice attempt carries the smuggle and must
    // be refused, so no trace is ever adopted.
    HotRig rig;
    rig.translator.setPostLayoutHook([](MachineImage &image) {
        if (image.traces.empty())
            return;
        size_t sites =
            miscompileSites(image, Miscompile::IflowTraceSmuggle)
                .size();
        if (sites > 0) {
            ASSERT_TRUE(injectMiscompile(
                image, Miscompile::IflowTraceSmuggle, 0));
        }
    });
    rig.runHot(kHotGhost, "hotstream", {0x10000, 64}, 12);
    EXPECT_EQ(rig.exec->tracesFormed(), 0u);
    EXPECT_GE(rig.ctx.stats().get("translator.iflow_rejected"), 1u);
    EXPECT_TRUE(rig.exec->currentImage().traces.empty());

    // With the builder honest again, the same workload splices fine
    // and the spliced image re-verifies clean.
    HotRig honest;
    honest.runHot(kHotGhost, "hotstream", {0x10000, 64}, 12);
    ASSERT_GT(honest.exec->tracesFormed(), 0u);
    EXPECT_TRUE(
        IflowVerifier{}.verify(honest.exec->currentImage()).ok());
    EXPECT_EQ(honest.ctx.stats().get("translator.iflow_rejected"),
              0u);
}

TEST(IflowGate, StatsRecordVerificationWork)
{
    sim::SimContext ctx;
    Translator translator(kKey, ctx);
    auto tr = translator.translateText(kGhostCorpus[2], kCodeBase);
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_EQ(ctx.stats().get("iflow.functions"), 2u);
    EXPECT_EQ(ctx.stats().get("iflow.insts"), tr.image->code.size());
    EXPECT_EQ(ctx.stats().get("iflow.findings"), 0u);
    // wall_ns is timing-dependent; it only has to exist as a counter.
    EXPECT_EQ(ctx.stats().all().count("iflow.wall_ns"), 1u);

    // Cache hits skip re-verification: counters must not move.
    uint64_t fns = ctx.stats().get("iflow.functions");
    auto again = translator.translateText(kGhostCorpus[2], kCodeBase);
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.fromCache);
    EXPECT_EQ(ctx.stats().get("iflow.functions"), fns);
}

// ---------------------------------------------------------------------
// Facts export (what the injection harness builds on)
// ---------------------------------------------------------------------

TEST(IflowFactsExport, TaintAndVisibleStoresAreExposed)
{
    auto image = compileUngated(kGhostCorpus[1],
                                sim::VgConfig::full());
    ASSERT_TRUE(image);
    IflowFacts facts;
    auto res = IflowVerifier{}.verify(*image, &facts);
    EXPECT_TRUE(res.ok()) << res.message();
    ASSERT_EQ(facts.taintedRegsAt.size(), image->code.size());
    ASSERT_EQ(facts.visibleStoreAt.size(), image->code.size());

    // The ghost read's result must show up tainted somewhere, and the
    // sealed store into the swap window must be flagged OS-visible.
    bool anyTaint = false;
    for (const auto &regs : facts.taintedRegsAt)
        anyTaint |= !regs.empty();
    EXPECT_TRUE(anyTaint);
    bool anyVisibleStore = false;
    for (size_t i = 0; i < image->code.size(); i++)
        if (image->code[i].op == MOp::Store &&
            facts.visibleStoreAt[i])
            anyVisibleStore = true;
    EXPECT_TRUE(anyVisibleStore);
}
