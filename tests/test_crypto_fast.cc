/**
 * @file
 * The crypto fast paths (T-table AES, one-shot SHA-256, precomputed
 * HMAC states, Montgomery modExp, cached seal keys) must be *bit
 * identical* to the reference implementations: same ciphertexts, same
 * digests, same MACs, same sealed blobs, same swapped-page bytes.
 * VgConfig::cryptoFastPath=false (or `fast=false` on the primitive)
 * selects the reference path; these tests run both side by side on
 * random inputs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <optional>

#include "crypto/aes.hh"
#include "crypto/bignum.hh"
#include "crypto/drbg.hh"
#include "crypto/hmac.hh"
#include "crypto/rsa.hh"
#include "crypto/sealed.hh"
#include "crypto/sha256.hh"
#include "hw/iommu.hh"
#include "hw/mmu.hh"
#include "hw/phys_mem.hh"
#include "hw/tpm.hh"
#include "sva/vm.hh"

using namespace vg;
using namespace vg::crypto;

namespace
{

sim::VgConfig
cfgFor(bool fast)
{
    sim::VgConfig cfg = sim::VgConfig::full();
    cfg.cryptoFastPath = fast;
    return cfg;
}

AesKey
randomKey(CtrDrbg &rng)
{
    AesKey k{};
    rng.generate(k.data(), k.size());
    return k;
}

} // namespace

class CryptoFastSweep : public ::testing::TestWithParam<int>
{
  protected:
    CtrDrbg
    rng() const
    {
        return CtrDrbg({uint8_t(GetParam()), 'c', 'f'});
    }
};

// --------------------------------------------------------------------
// AES: block, CBC, and CTR over random keys and lengths.
// --------------------------------------------------------------------

TEST_P(CryptoFastSweep, AesPrimitives)
{
    CtrDrbg r = rng();
    for (int round = 0; round < 20; round++) {
        AesKey key = randomKey(r);
        Aes128 fast(key, true);
        Aes128 ref(key, false);

        uint8_t blkF[16], blkR[16];
        r.generate(blkF, 16);
        std::memcpy(blkR, blkF, 16);
        fast.encryptBlock(blkF);
        ref.encryptBlock(blkR);
        ASSERT_EQ(std::memcmp(blkF, blkR, 16), 0) << "round " << round;
        fast.decryptBlock(blkF);
        ref.decryptBlock(blkR);
        ASSERT_EQ(std::memcmp(blkF, blkR, 16), 0) << "round " << round;

        AesBlock iv{};
        r.generate(iv.data(), iv.size());
        size_t len = size_t(r.nextBounded(600));
        std::vector<uint8_t> plain = r.generate(len);

        auto ctrF = fast.ctrCrypt(plain, iv);
        auto ctrR = ref.ctrCrypt(plain, iv);
        ASSERT_EQ(ctrF, ctrR) << "ctr len " << len;
        ASSERT_EQ(fast.ctrCrypt(ctrF, iv), plain);

        auto cbcF = fast.cbcEncrypt(plain, iv);
        auto cbcR = ref.cbcEncrypt(plain, iv);
        ASSERT_EQ(cbcF, cbcR) << "cbc len " << len;
        bool okF = false, okR = false;
        auto backF = fast.cbcDecrypt(cbcF, iv, okF);
        auto backR = ref.cbcDecrypt(cbcR, iv, okR);
        ASSERT_TRUE(okF && okR);
        ASSERT_EQ(backF, plain);
        ASSERT_EQ(backR, plain);
    }

    // A nonce near the 64-bit counter boundary exercises the carry
    // chain identically on both CTR paths.
    AesKey key = randomKey(r);
    Aes128 fast(key, true), ref(key, false);
    AesBlock nonce{};
    for (int i = 8; i < 16; i++)
        nonce[size_t(i)] = 0xff;
    std::vector<uint8_t> data = r.generate(128);
    ASSERT_EQ(fast.ctrCrypt(data, nonce), ref.ctrCrypt(data, nonce));
}

// --------------------------------------------------------------------
// SHA-256 + HMAC: random lengths, random chunking, random key sizes.
// --------------------------------------------------------------------

TEST_P(CryptoFastSweep, ShaAndHmac)
{
    CtrDrbg r = rng();
    for (size_t len = 0; len < 200; len++) {
        std::vector<uint8_t> msg = r.generate(len);
        ASSERT_EQ(Sha256::hash(msg, true), Sha256::hash(msg, false))
            << "len " << len;
    }
    for (int round = 0; round < 10; round++) {
        std::vector<uint8_t> msg =
            r.generate(size_t(r.nextBounded(8192)));
        Digest ref = Sha256::hash(msg, false);
        ASSERT_EQ(Sha256::hash(msg, true), ref);

        // Random chunking must not change the digest on either path.
        for (bool fast : {true, false}) {
            Sha256 h(fast);
            size_t off = 0;
            while (off < msg.size()) {
                size_t n = std::min<size_t>(r.nextBounded(200) + 1,
                                            msg.size() - off);
                h.update(msg.data() + off, n);
                off += n;
            }
            ASSERT_EQ(h.final(), ref) << "fast=" << fast;
        }
    }
    for (size_t key_len = 0; key_len < 150; key_len += 7) {
        std::vector<uint8_t> key = r.generate(key_len);
        std::vector<uint8_t> msg =
            r.generate(size_t(r.nextBounded(500)));
        Digest ref = hmacSha256(key, msg.data(), msg.size(), false);
        ASSERT_EQ(hmacSha256(key, msg.data(), msg.size(), true), ref)
            << "key len " << key_len;
        ASSERT_EQ(HmacSha256(key, true).mac(msg), ref);
        ASSERT_EQ(HmacSha256(key, false).mac(msg), ref);
    }
}

// --------------------------------------------------------------------
// Montgomery modExp vs the reference square-and-multiply.
// --------------------------------------------------------------------

TEST_P(CryptoFastSweep, ModExp)
{
    CtrDrbg r = rng();
    for (int round = 0; round < 60; round++) {
        BigNum mod =
            BigNum::fromBytes(r.generate(size_t(r.nextBounded(48)) + 1));
        if (mod.isZero())
            mod = BigNum(1);
        BigNum base =
            BigNum::fromBytes(r.generate(size_t(r.nextBounded(64)) + 1));
        BigNum exp =
            BigNum::fromBytes(r.generate(size_t(r.nextBounded(8)) + 1));
        ASSERT_EQ(base.modExp(exp, mod, true),
                  base.modExp(exp, mod, false))
            << "round " << round << " mod " << mod.toHex();
    }

    // Directed edges: trivial modulus, even modulus (reference
    // fallback), zero exponent, zero base, base == mod.
    BigNum m = BigNum::fromHex("f123456789abcdef123457");
    BigNum even = BigNum::fromHex("f123456789abcdef123456");
    BigNum b = BigNum::fromHex("123456789");
    EXPECT_EQ(b.modExp(BigNum(5), BigNum(1), true), BigNum());
    EXPECT_EQ(b.modExp(BigNum(77), even, true),
              b.modExp(BigNum(77), even, false));
    EXPECT_EQ(b.modExp(BigNum(), m, true), BigNum(1));
    EXPECT_EQ(BigNum().modExp(BigNum(9), m, true),
              BigNum().modExp(BigNum(9), m, false));
    EXPECT_EQ(m.modExp(BigNum(3), m, true), BigNum());

    // A 2048-bit odd modulus with 64-bit exponents (the reference
    // ladder is too slow for full-width exponents here).
    BigNum wide = BigNum::fromBytes(r.generate(256));
    wide.setBit(2047);
    wide.setBit(0);
    for (int round = 0; round < 3; round++) {
        BigNum base = BigNum::fromBytes(r.generate(256));
        BigNum exp(r.next64());
        ASSERT_EQ(base.modExp(exp, wide, true),
                  base.modExp(exp, wide, false))
            << "wide round " << round;
    }
}

// --------------------------------------------------------------------
// RSA: identical signatures and ciphertexts (cloned DRBG streams).
// --------------------------------------------------------------------

TEST_P(CryptoFastSweep, RsaOps)
{
    CtrDrbg keygen = rng();
    RsaPrivateKey key = rsaGenerate(keygen, 384);

    CtrDrbg r = rng();
    for (int round = 0; round < 4; round++) {
        std::vector<uint8_t> msg =
            r.generate(size_t(r.nextBounded(200)) + 1);

        auto sigF = rsaSign(key, msg, true);
        auto sigR = rsaSign(key, msg, false);
        ASSERT_EQ(sigF, sigR) << "round " << round;
        EXPECT_TRUE(rsaVerify(key.publicKey(), msg, sigF, true));
        EXPECT_TRUE(rsaVerify(key.publicKey(), msg, sigF, false));

        std::vector<uint8_t> shortMsg = r.generate(16);
        CtrDrbg padF({uint8_t(round), 'p'});
        CtrDrbg padR({uint8_t(round), 'p'});
        auto cF = rsaEncrypt(key.publicKey(), padF, shortMsg, true);
        auto cR = rsaEncrypt(key.publicKey(), padR, shortMsg, false);
        ASSERT_EQ(cF, cR) << "round " << round;
        bool okF = false, okR = false;
        ASSERT_EQ(rsaDecrypt(key, cF, okF, true), shortMsg);
        ASSERT_EQ(rsaDecrypt(key, cF, okR, false), shortMsg);
        EXPECT_TRUE(okF && okR);
    }
}

// --------------------------------------------------------------------
// Sealed blobs: byte-identical output, tamper detection on both paths.
// --------------------------------------------------------------------

TEST_P(CryptoFastSweep, SealedBlobs)
{
    CtrDrbg r = rng();
    // Few distinct keys so the derived-key cache gets hits too.
    std::vector<AesKey> keys;
    for (int i = 0; i < 3; i++)
        keys.push_back(randomKey(r));

    for (int round = 0; round < 20; round++) {
        const AesKey &key = keys[round % keys.size()];
        std::vector<uint8_t> plain =
            r.generate(size_t(r.nextBounded(5000)));
        std::vector<uint8_t> aad =
            r.generate(size_t(r.nextBounded(32)));

        CtrDrbg rngF({uint8_t(round), 's'});
        CtrDrbg rngR({uint8_t(round), 's'});
        SealedBlob blobF = seal(key, rngF, plain, aad, true);
        SealedBlob blobR = seal(key, rngR, plain, aad, false);
        ASSERT_EQ(blobF.serialize(), blobR.serialize())
            << "round " << round;

        bool okF = false, okR = false;
        ASSERT_EQ(unseal(key, blobF, okF, aad, true), plain);
        ASSERT_EQ(unseal(key, blobF, okR, aad, false), plain);
        EXPECT_TRUE(okF && okR);

        if (!blobF.ciphertext.empty()) {
            SealedBlob bad = blobF;
            bad.ciphertext[size_t(r.nextBounded(
                bad.ciphertext.size()))] ^= 0x01;
            okF = okR = true;
            unseal(key, bad, okF, aad, true);
            unseal(key, bad, okR, aad, false);
            EXPECT_FALSE(okF);
            EXPECT_FALSE(okR);
        }
    }
}

// --------------------------------------------------------------------
// Ghost-page swap: two booted machines, cryptoFastPath on vs off,
// random swap-out/swap-in traffic in lockstep. Blobs, RAM, simulated
// time, and stats must all agree.
// --------------------------------------------------------------------

namespace
{

struct SwapRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    std::deque<hw::Frame> freeFrames;

    static constexpr int kPages = 4;

    explicit SwapRig(bool fast)
        : ctx(cfgFor(fast)), mem(512), mmu(mem, ctx), iommu(mem, ctx),
          tpm({'c', 's'}), vm(ctx, mem, mmu, iommu, tpm)
    {
        vm.install(384);
        vm.boot();
        for (hw::Frame f = 64; f < 256; f++)
            freeFrames.push_back(f);
        vm.setFrameProvider([this]() -> std::optional<hw::Frame> {
            if (freeFrames.empty())
                return std::nullopt;
            hw::Frame f = freeFrames.front();
            freeFrames.pop_front();
            return f;
        });
        vm.setFrameReceiver(
            [this](hw::Frame f) { freeFrames.push_back(f); });

        sva::SvaError err;
        EXPECT_TRUE(vm.declarePtPage(0, 4, &err)) << err.message;
        EXPECT_TRUE(vm.allocGhostMemory(1, 0, hw::ghostBase, kPages,
                                        &err))
            << err.message;
    }

    /** Fill every ghost-typed frame with bytes from @p fill. */
    void
    fillGhostFrames(const std::vector<uint8_t> &fill)
    {
        size_t off = 0;
        for (hw::Frame f = 0; f < 512; f++) {
            if (vm.frames()[f].type != sva::FrameType::Ghost)
                continue;
            mem.writeBytes(f * hw::pageSize, fill.data() + off,
                           hw::pageSize);
            off += hw::pageSize;
        }
    }
};

} // namespace

TEST_P(CryptoFastSweep, GhostPageSwap)
{
    CtrDrbg r = rng();
    SwapRig fast(true);
    SwapRig ref(false);

    std::vector<uint8_t> fill =
        r.generate(SwapRig::kPages * hw::pageSize);
    fast.fillGhostFrames(fill);
    ref.fillGhostFrames(fill);

    std::map<hw::Vaddr, SealedBlob> swapped;
    sva::SvaError errF, errR;

    for (int op = 0; op < 200; op++) {
        hw::Vaddr va =
            hw::ghostBase + r.nextBounded(SwapRig::kPages) * hw::pageSize;
        auto it = swapped.find(va);
        if (it == swapped.end()) {
            auto blobF = fast.vm.swapOutGhostPage(1, 0, va, &errF);
            auto blobR = ref.vm.swapOutGhostPage(1, 0, va, &errR);
            ASSERT_TRUE(blobF.has_value()) << "op " << op;
            ASSERT_TRUE(blobR.has_value()) << "op " << op;
            // The tentpole claim: byte-identical sealed blobs.
            ASSERT_EQ(blobF->serialize(), blobR->serialize())
                << "op " << op;
            swapped.emplace(va, *blobF);
        } else {
            if (r.nextBounded(4) == 0) {
                // Tampered page: both paths must reject it.
                SealedBlob bad = it->second;
                bad.ciphertext[size_t(r.nextBounded(
                    bad.ciphertext.size()))] ^= 0x40;
                EXPECT_FALSE(fast.vm.swapInGhostPage(1, 0, va, bad,
                                                     &errF));
                EXPECT_FALSE(ref.vm.swapInGhostPage(1, 0, va, bad,
                                                    &errR));
            }
            ASSERT_TRUE(fast.vm.swapInGhostPage(1, 0, va, it->second,
                                                &errF))
                << "op " << op << ": " << errF.message;
            ASSERT_TRUE(ref.vm.swapInGhostPage(1, 0, va, it->second,
                                               &errR))
                << "op " << op;
            swapped.erase(it);
        }
        // Lockstep: simulated time agrees after every op.
        ASSERT_EQ(fast.ctx.clock().now(), ref.ctx.clock().now())
            << "op " << op;
    }

    // Swap everything back in, then compare full machine state.
    for (auto &[va, blob] : swapped) {
        ASSERT_TRUE(fast.vm.swapInGhostPage(1, 0, va, blob, &errF));
        ASSERT_TRUE(ref.vm.swapInGhostPage(1, 0, va, blob, &errR));
    }
    EXPECT_EQ(fast.ctx.stats().all(), ref.ctx.stats().all());
    EXPECT_EQ(fast.ctx.clock().now(), ref.ctx.clock().now());
    std::vector<uint8_t> a(hw::pageSize), b(hw::pageSize);
    for (uint64_t pa = 0; pa < fast.mem.sizeBytes();
         pa += hw::pageSize) {
        fast.mem.readBytes(pa, a.data(), a.size());
        ref.mem.readBytes(pa, b.data(), b.size());
        ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
            << "frame " << (pa >> hw::pageShift);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoFastSweep,
                         ::testing::Values(1, 2, 3, 4));
