/**
 * @file
 * Ghost-swap subsystem tests: equivalence of the batched eviction
 * pipeline with the per-page reference path, bit-identity of batch
 * sealing, the generation mechanism that defeats stale replay, the
 * second-chance eviction clock, and pressure-triggered reclaim.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "crypto/drbg.hh"
#include "crypto/sealed.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

SystemConfig
swapConfig(bool swap_fast, unsigned vcpus)
{
    SystemConfig cfg;
    cfg.vg = sim::VgConfig::full();
    cfg.vg.swapFastPath = swap_fast;
    cfg.vg.vcpus = vcpus;
    cfg.memFrames = 4096;
    cfg.diskBlocks = 16384; // 2048 swap blocks -> 1024 slots
    cfg.rsaBits = 384;
    return cfg;
}

/** FNV-1a over a byte range. */
uint64_t
fnv(const uint8_t *p, size_t n, uint64_t h = 1469598103934665603ull)
{
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Everything that must match between the two swap paths. */
struct SwapResult
{
    uint64_t digest1 = 0; ///< pages after the first swap cycle
    uint64_t digest2 = 0; ///< pages after reclaim + rewrite cycle
    uint64_t swappedAtEnd = 0;
    std::map<std::string, uint64_t> stats;
};

/** Stats that count *work done*, not how it was batched or charged.
 *  Deliberately excludes the batch-mechanics counters
 *  (sva.ghost_swap_batches, swap.write_batches) and anything
 *  timing-dependent. */
const char *kSwapInvariantStats[] = {
    "swap.pages_stored",
    "swap.pages_loaded",
    "kernel.ghost_swapouts",
    "kernel.ghost_swapins",
    "kernel.ghost_faults",
    "kernel.ghost_reclaimed",
    "sva.ghost_pages_swapped_out",
    "sva.ghost_pages_swapped_in",
    "sva.ghost_pages_allocated",
    "sva.violations",
};

constexpr uint64_t kPages = 40;

/** A deterministic swap-heavy workload: alloc, seal-out, fault-in,
 *  rewrite, evict again, reclaim through the clock, fault everything
 *  back and digest it. */
SwapResult
runSwapCorpus(bool swap_fast, unsigned vcpus)
{
    SwapResult out;
    System sys(swapConfig(swap_fast, vcpus));
    sys.boot();

    sys.runProcess("swapper", [&](UserApi &api) {
        uint64_t pid = api.pid();
        hw::Vaddr base = api.allocGhost(kPages);
        EXPECT_NE(base, 0u);

        std::vector<uint8_t> page(hw::pageSize);
        for (uint64_t i = 0; i < kPages; i++) {
            for (size_t b = 0; b < page.size(); b++)
                page[b] = uint8_t(i * 131 + b * 7 + 1);
            EXPECT_TRUE(api.ghostWrite(base + i * hw::pageSize,
                                       page.data(), page.size()));
        }

        // Cycle 1: evict everything (batched vs per-page), then fault
        // every page back in and digest it.
        EXPECT_EQ(sys.kernel().swapOutGhost(pid, kPages), kPages);
        EXPECT_EQ(sys.kernel().swappedGhostPages(pid), kPages);
        uint64_t d = 1469598103934665603ull;
        for (uint64_t i = 0; i < kPages; i++) {
            EXPECT_TRUE(api.ghostRead(base + i * hw::pageSize,
                                      page.data(), page.size()));
            d = fnv(page.data(), page.size(), d);
        }
        out.digest1 = d;

        // Cycle 2: rewrite half the pages, evict a partial set, then
        // relieve pressure through the clock and digest everything.
        for (uint64_t i = 0; i < kPages; i += 2) {
            for (size_t b = 0; b < page.size(); b++)
                page[b] = uint8_t(i * 17 + b * 3 + 5);
            EXPECT_TRUE(api.ghostWrite(base + i * hw::pageSize,
                                       page.data(), page.size()));
        }
        EXPECT_EQ(sys.kernel().swapOutGhost(pid, 16), 16u);
        EXPECT_GT(sys.kernel().reclaimGhostFrames(8), 0u);

        d = 1469598103934665603ull;
        for (uint64_t i = 0; i < kPages; i++) {
            EXPECT_TRUE(api.ghostRead(base + i * hw::pageSize,
                                      page.data(), page.size()));
            d = fnv(page.data(), page.size(), d);
        }
        out.digest2 = d;
        out.swappedAtEnd = sys.kernel().swappedGhostPages(pid);
        return 0;
    });

    for (const char *k : kSwapInvariantStats)
        out.stats[k] = sys.ctx().stats().get(k);
    out.stats["sva.ghost_swap_batches"] =
        sys.ctx().stats().get("sva.ghost_swap_batches");
    out.stats["swap.write_batches"] =
        sys.ctx().stats().get("swap.write_batches");
    return out;
}

} // namespace

TEST(GhostSwap, SwapEquivalenceSweep)
{
    for (unsigned vcpus = 1; vcpus <= 4; vcpus++) {
        SCOPED_TRACE("vcpus=" + std::to_string(vcpus));
        SwapResult fast = runSwapCorpus(/*swap_fast=*/true, vcpus);
        SwapResult ref = runSwapCorpus(/*swap_fast=*/false, vcpus);

        // Ghost contents are bit-identical across the two pipelines.
        EXPECT_EQ(fast.digest1, ref.digest1);
        EXPECT_EQ(fast.digest2, ref.digest2);
        EXPECT_EQ(fast.swappedAtEnd, ref.swappedAtEnd);

        // Work-done counters: same pages sealed, stored, loaded,
        // faulted and reclaimed, whichever pipeline ran.
        for (const char *k : kSwapInvariantStats) {
            SCOPED_TRACE(k);
            EXPECT_EQ(fast.stats[k], ref.stats[k]);
        }
        EXPECT_EQ(fast.stats["sva.violations"], 0u);

        // Only the batching mechanics differ: the fast path groups
        // pages into multi-page seal batches and doorbell batches.
        EXPECT_GT(fast.stats["sva.ghost_swap_batches"], 0u);
        EXPECT_EQ(ref.stats["sva.ghost_swap_batches"], 0u);
        EXPECT_LT(fast.stats["swap.write_batches"],
                  ref.stats["swap.write_batches"]);
    }
}

TEST(GhostSwap, BatchSealBitIdenticalToSequentialSeal)
{
    // sealBatch() draws nonces in batch order, so its output must be
    // bit-identical to seal() called on each element in sequence.
    crypto::AesKey key{};
    for (size_t i = 0; i < key.size(); i++)
        key[i] = uint8_t(0xA0 + i);

    auto mkBatch = [] {
        std::vector<crypto::SealInput> batch;
        for (int i = 0; i < 9; i++) {
            crypto::SealInput in;
            in.plain.assign(1024 + 256 * size_t(i), uint8_t(i + 1));
            in.aad = {uint8_t(i), 0x55, uint8_t(0xF0 | i)};
            batch.push_back(std::move(in));
        }
        return batch;
    };

    for (bool fast : {true, false}) {
        SCOPED_TRACE(fast ? "fast" : "ref");
        crypto::CtrDrbg rngA(
            std::vector<uint8_t>{1, 2, 3, 4, 5});
        crypto::CtrDrbg rngB(
            std::vector<uint8_t>{1, 2, 3, 4, 5});

        std::vector<crypto::SealInput> batch = mkBatch();
        std::vector<crypto::SealedBlob> batched =
            crypto::sealBatch(key, rngA, batch, fast);

        ASSERT_EQ(batched.size(), batch.size());
        for (size_t i = 0; i < batch.size(); i++) {
            crypto::SealedBlob one = crypto::seal(
                key, rngB, batch[i].plain, batch[i].aad, fast);
            EXPECT_EQ(batched[i].nonce, one.nonce);
            EXPECT_EQ(batched[i].ciphertext, one.ciphertext);
            EXPECT_EQ(batched[i].mac, one.mac);
        }
    }
}

TEST(GhostSwap, SwapGenerationAdvancesPerEviction)
{
    // Every swap-out seals under a fresh monotonic generation, and a
    // successful swap-in retires the record — the mechanism that makes
    // stale sealed pages unreplayable.
    System sys(swapConfig(true, 1));
    sys.boot();
    sys.runProcess("gen", [&](UserApi &api) {
        uint64_t pid = api.pid();
        hw::Vaddr gva = api.allocGhost(1);
        const char msg[] = "generation test page";
        EXPECT_TRUE(api.ghostWrite(gva, msg, sizeof(msg)));

        EXPECT_EQ(sys.vm().swapGeneration(pid, gva), 0u);
        EXPECT_EQ(sys.kernel().swapOutGhost(pid, 1), 1u);
        uint64_t g1 = sys.vm().swapGeneration(pid, gva);
        EXPECT_GT(g1, 0u);

        // Fault it back in: the generation record is retired.
        char c = 0;
        EXPECT_TRUE(api.ghostRead(gva, &c, 1));
        EXPECT_EQ(sys.vm().swapGeneration(pid, gva), 0u);

        // The next eviction gets a strictly newer generation.
        EXPECT_EQ(sys.kernel().swapOutGhost(pid, 1), 1u);
        uint64_t g2 = sys.vm().swapGeneration(pid, gva);
        EXPECT_GT(g2, g1);

        EXPECT_TRUE(api.ghostRead(gva, &c, 1));
        EXPECT_EQ(c, 'g');
        return 0;
    });
}

TEST(GhostSwap, SecondChanceClockSparesReferencedPages)
{
    System sys(swapConfig(true, 1));
    sys.boot();
    sys.runProcess("clock", [&](UserApi &api) {
        uint64_t pid = api.pid();
        hw::Vaddr base = api.allocGhost(4);
        uint64_t v = 0;
        for (uint64_t i = 0; i < 4; i++) {
            v = 0x1111 * (i + 1);
            EXPECT_TRUE(api.ghostWrite(base + i * hw::pageSize, &v,
                                       sizeof(v)));
        }
        EXPECT_EQ(sys.kernel().ghostClock().size(), 4u);

        // Clear every hardware reference bit, then touch only page 2.
        hw::Frame root = sys.kernel().process(pid)->rootFrame;
        for (uint64_t i = 0; i < 4; i++)
            sys.vm().ghostPageTestClearRef(pid, root,
                                           base + i * hw::pageSize);
        EXPECT_FALSE(sys.vm().ghostPageReferenced(
            pid, root, base + 2 * hw::pageSize));
        EXPECT_TRUE(api.ghostRead(base + 2 * hw::pageSize, &v,
                                  sizeof(v)));
        EXPECT_TRUE(sys.vm().ghostPageReferenced(
            pid, root, base + 2 * hw::pageSize));

        // Reclaim three frames: the referenced page gets its second
        // chance and every unreferenced page goes to swap instead.
        EXPECT_EQ(sys.kernel().reclaimGhostFrames(3), 3u);
        EXPECT_FALSE(
            sys.kernel().swapArea()->contains(pid,
                                              base + 2 * hw::pageSize));
        for (uint64_t i : {0u, 1u, 3u})
            EXPECT_TRUE(sys.kernel().swapArea()->contains(
                pid, base + i * hw::pageSize));

        // The survivor's reference bit was consumed by the sweep.
        EXPECT_FALSE(sys.vm().ghostPageReferenced(
            pid, root, base + 2 * hw::pageSize));

        // Everything still reads back correctly.
        for (uint64_t i = 0; i < 4; i++) {
            EXPECT_TRUE(api.ghostRead(base + i * hw::pageSize, &v,
                                      sizeof(v)));
            EXPECT_EQ(v, 0x1111 * (i + 1));
        }
        return 0;
    });
}

TEST(GhostSwap, AllocationUnderPressureReclaimsTransparently)
{
    // Oversubscribe physical memory with ghost allocations: the
    // headroom check in allocgm() must push old ghost pages to swap
    // instead of failing, and every page must survive the round trip.
    SystemConfig cfg = swapConfig(true, 1);
    cfg.diskBlocks = 65536; // 8192 swap blocks -> 4096 slots
    System sys(cfg);
    sys.boot();
    sys.runProcess("hog", [&](UserApi &api) {
        uint64_t free0 = sys.kernel().freeFrames();
        EXPECT_GT(free0, 128u);
        if (free0 <= 128)
            return 1;

        // First wave fills most of memory; second wave cannot fit
        // without eviction.
        uint64_t wave = (free0 * 2) / 3;
        hw::Vaddr a = api.allocGhost(wave);
        EXPECT_NE(a, 0u);
        hw::Vaddr b = a ? api.allocGhost(wave) : 0;
        EXPECT_NE(b, 0u);
        if (!a || !b)
            return 1;
        uint64_t v = 0;
        for (uint64_t i = 0; i < wave; i++) {
            v = 0xAAAA0000 + i;
            EXPECT_TRUE(api.ghostWrite(a + i * hw::pageSize, &v,
                                       sizeof(v)));
        }
        for (uint64_t i = 0; i < wave; i++) {
            v = 0xBBBB0000 + i;
            EXPECT_TRUE(api.ghostWrite(b + i * hw::pageSize, &v,
                                       sizeof(v)));
        }

        // Pressure relief actually ran...
        EXPECT_GT(sys.ctx().stats().get("kernel.ghost_reclaimed"), 0u);
        EXPECT_GT(sys.kernel().swappedGhostPages(api.pid()), 0u);
        // ...and the allocator kept its headroom.
        EXPECT_GT(sys.kernel().freeFrames(), 0u);

        // Every page of both waves reads back through the fault path.
        for (uint64_t i = 0; i < wave; i++) {
            EXPECT_TRUE(api.ghostRead(a + i * hw::pageSize, &v,
                                      sizeof(v)));
            EXPECT_EQ(v, 0xAAAA0000 + i);
        }
        for (uint64_t i = 0; i < wave; i++) {
            EXPECT_TRUE(api.ghostRead(b + i * hw::pageSize, &v,
                                      sizeof(v)));
            EXPECT_EQ(v, 0xBBBB0000 + i);
        }
        EXPECT_EQ(sys.vm().violationCount(), 0u);
        return 0;
    });
}
