/**
 * @file
 * Compiler pipeline tests: codegen + executor correctness, sandbox
 * pass semantics, CFI enforcement, translation cache and signatures.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "hw/layout.hh"
#include "sim/context.hh"
#include "vir/builder.hh"
#include "vir/text.hh"

using namespace vg;
using namespace vg::cc;

namespace
{

/** Sparse flat memory that never faults (reads of untouched bytes
 *  return 0) — stands in for the kernel's view of memory. */
class FlatPort : public MemPort
{
  public:
    bool
    read(uint64_t va, unsigned bytes, uint64_t &out) override
    {
        out = 0;
        for (unsigned i = 0; i < bytes; i++)
            out |= uint64_t(byteAt(va + i)) << (8 * i);
        return true;
    }

    bool
    write(uint64_t va, unsigned bytes, uint64_t val) override
    {
        for (unsigned i = 0; i < bytes; i++)
            _mem[va + i] = uint8_t(val >> (8 * i));
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        for (uint64_t i = 0; i < len; i++)
            _mem[dst + i] = byteAt(src + i);
        return true;
    }

    uint8_t
    byteAt(uint64_t va) const
    {
        auto it = _mem.find(va);
        return it == _mem.end() ? 0 : it->second;
    }

  private:
    std::map<uint64_t, uint8_t> _mem;
};

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;
constexpr uint64_t kStackBase = 0xffffffa000000000ull;
constexpr uint64_t kStackSize = 1 << 20;

const std::vector<uint8_t> kKey(32, 0x11);

struct Rig
{
    sim::SimContext ctx;
    Translator translator;
    FlatPort port;
    ExternTable externs;

    explicit Rig(sim::VgConfig cfg = sim::VgConfig::full())
        : ctx(cfg), translator(kKey, ctx)
    {}

    ExecResult
    run(const std::string &text, const std::string &fn,
        const std::vector<uint64_t> &args)
    {
        auto tr = translator.translateText(text, kCodeBase);
        EXPECT_TRUE(tr.ok) << tr.error;
        if (!tr.ok)
            return {};
        Executor exec(*tr.image, port, externs, ctx, kStackBase,
                      kStackSize);
        return exec.call(fn, args);
    }
};

} // namespace

TEST(Codegen, ArithmeticEndToEnd)
{
    Rig rig;
    const char *src = R"(
func @addmul(2) {
entry:
  %2 = add %0, %1
  %3 = const 3
  %4 = mul %2, %3
  ret %4
}
)";
    auto r = rig.run(src, "addmul", {10, 4});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 42u);
}

TEST(Codegen, ControlFlowLoop)
{
    // sum 1..n
    Rig rig;
    const char *src = R"(
func @sum(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = const 1
  %2 = add %2, %4
  %1 = add %1, %2
  br head
done:
  ret %1
}
)";
    auto r = rig.run(src, "sum", {10});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 55u);
}

TEST(Codegen, CallsAndRecursion)
{
    Rig rig;
    const char *src = R"(
func @fib(1) {
entry:
  %1 = const 2
  %2 = icmp ult %0, %1
  condbr %2, base, rec
base:
  ret %0
rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @fib(%4)
  %6 = const 2
  %7 = sub %0, %6
  %8 = call @fib(%7)
  %9 = add %5, %8
  ret %9
}
)";
    auto r = rig.run(src, "fib", {10});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 55u);
}

TEST(Codegen, MemoryAndAlloca)
{
    Rig rig(sim::VgConfig::native());
    const char *src = R"(
func @store_load(1) {
entry:
  %1 = alloca 16
  store.i64 %1, %0
  %2 = load.i64 %1
  %3 = const 8
  %4 = add %1, %3
  store.i32 %4, %2
  %5 = load.i32 %4
  ret %5
}
)";
    auto r = rig.run(src, "store_load", {0x1122334455667788ull});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 0x55667788u);
}

TEST(Codegen, MemcpyMovesBytes)
{
    Rig rig(sim::VgConfig::native());
    const char *src = R"(
func @cpy(0) {
entry:
  %0 = alloca 32
  %1 = const 0xdeadbeefcafebabe
  store.i64 %0, %1
  %2 = const 16
  %3 = add %0, %2
  %4 = const 8
  memcpy %3, %0, %4
  %5 = load.i64 %3
  ret %5
}
)";
    auto r = rig.run(src, "cpy", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 0xdeadbeefcafebabeull);
}

TEST(Codegen, ExternCalls)
{
    Rig rig;
    uint64_t captured = 0;
    rig.externs.fns["klog"] = [&](const std::vector<uint64_t> &args) {
        captured = args.at(0);
        return uint64_t(7);
    };
    const char *src = R"(
func @f(0) {
entry:
  %0 = const 123
  %1 = call @klog(%0)
  ret %1
}
)";
    auto r = rig.run(src, "f", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 7u);
    EXPECT_EQ(captured, 123u);
}

TEST(Codegen, UnknownExternFaults)
{
    Rig rig;
    const char *src = R"(
func @f(0) {
entry:
  %0 = const 1
  %1 = call @nosuch(%0)
  ret %1
}
)";
    auto r = rig.run(src, "f", {});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, ExecFault::UnknownExtern);
}

TEST(Codegen, DivideByZeroTerminates)
{
    Rig rig;
    const char *src = R"(
func @f(1) {
entry:
  %1 = const 0
  %2 = udiv %0, %1
  ret %2
}
)";
    auto r = rig.run(src, "f", {5});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, ExecFault::DivideByZero);
}

TEST(Codegen, InfiniteLoopExhaustsFuel)
{
    Rig rig;
    const char *src = R"(
func @f(0) {
entry:
  br entry
}
)";
    auto tr = rig.translator.translateText(src, kCodeBase);
    ASSERT_TRUE(tr.ok);
    Executor exec(*tr.image, rig.port, rig.externs, rig.ctx, kStackBase,
                  kStackSize);
    exec.setFuel(1000);
    auto r = exec.call("f", {});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, ExecFault::FuelExhausted);
}

// --------------------------------------------------------------------
// Sandbox pass
// --------------------------------------------------------------------

// A store through a ghost pointer must be deflected: the ghost location
// stays untouched and the masked alias is written instead.
TEST(SandboxPass, DeflectsGhostStores)
{
    Rig rig; // full config: sandboxing on
    std::string src = R"(
func @poke(2) {
entry:
  store.i64 %0, %1
  ret %1
}
)";
    uint64_t ghost_va = hw::ghostBase + 0x5000;
    auto r = rig.run(src, "poke", {ghost_va, 0x4242});
    ASSERT_TRUE(r.ok) << r.detail;

    // Nothing at the ghost address; value landed at the masked alias.
    uint64_t at_ghost = 0;
    rig.port.read(ghost_va, 8, at_ghost);
    EXPECT_EQ(at_ghost, 0u);
    uint64_t at_alias = 0;
    rig.port.read(ghost_va | hw::sandboxOrMask, 8, at_alias);
    EXPECT_EQ(at_alias, 0x4242u);
}

TEST(SandboxPass, GhostLoadsReadAliasNotSecret)
{
    Rig rig;
    // Plant a "secret" at the ghost address directly (as the app would
    // see it) — instrumented kernel code must not be able to read it.
    uint64_t ghost_va = hw::ghostBase + 0x9000;
    rig.port.write(ghost_va, 8, 0x5ec2e7);

    std::string src = R"(
func @peek(1) {
entry:
  %1 = load.i64 %0
  ret %1
}
)";
    auto r = rig.run(src, "peek", {ghost_va});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_NE(r.value, 0x5ec2e7u);
    EXPECT_EQ(r.value, 0u); // alias location is untouched
}

TEST(SandboxPass, SvaInternalAccessGoesToZero)
{
    Rig rig;
    rig.port.write(hw::svaBase + 0x100, 8, 0x777);
    std::string src = R"(
func @peek(1) {
entry:
  %1 = load.i64 %0
  ret %1
}
)";
    auto r = rig.run(src, "peek", {hw::svaBase + 0x100});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 0u); // rewritten to address 0
}

TEST(SandboxPass, OrdinaryKernelAccessUnaffected)
{
    Rig rig;
    uint64_t kva = hw::kernelBase + 0x1000;
    std::string src = R"(
func @rw(2) {
entry:
  store.i64 %0, %1
  %2 = load.i64 %0
  ret %2
}
)";
    auto r = rig.run(src, "rw", {kva, 99});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 99u);
}

TEST(SandboxPass, NativeConfigDoesNotInstrument)
{
    Rig rig(sim::VgConfig::native());
    uint64_t ghost_va = hw::ghostBase + 0x5000;
    rig.port.write(ghost_va, 8, 0x5ec2e7);
    std::string src = R"(
func @peek(1) {
entry:
  %1 = load.i64 %0
  ret %1
}
)";
    auto r = rig.run(src, "peek", {ghost_va});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0x5ec2e7u); // the attack works natively
}

TEST(SandboxPass, ReportsInstrumentationStats)
{
    sim::SimContext ctx;
    auto parsed = vir::parse(R"(
func @f(2) {
entry:
  %2 = load.i64 %0
  store.i64 %1, %2
  %3 = const 8
  memcpy %0, %1, %3
  ret %2
}
)");
    ASSERT_TRUE(parsed.ok);
    PassStats stats = sandboxPass(parsed.module);
    // load + store + two memcpy operands.
    EXPECT_EQ(stats.sitesInstrumented, 4u);
    EXPECT_GT(stats.instsAdded, 40u);
}

// --------------------------------------------------------------------
// CFI
// --------------------------------------------------------------------

TEST(Cfi, IndirectCallToFunctionEntryWorks)
{
    Rig rig;
    const char *src = R"(
func @target(1) {
entry:
  %1 = const 5
  %2 = add %0, %1
  ret %2
}

func @f(0) {
entry:
  %0 = funcaddr @target
  %1 = const 37
  %2 = callind %0(%1)
  ret %2
}
)";
    auto r = rig.run(src, "f", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 42u);
}

TEST(Cfi, IndirectCallIntoFunctionBodyFaults)
{
    Rig rig;
    const char *src = R"(
func @target(1) {
entry:
  %1 = const 5
  %2 = add %0, %1
  ret %2
}

func @f(0) {
entry:
  %0 = funcaddr @target
  %1 = const 8
  %2 = add %0, %1     ; skip past the entry label
  %3 = callind %2(%1)
  ret %3
}
)";
    auto r = rig.run(src, "f", {});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, ExecFault::CfiViolation);
}

TEST(Cfi, NativeConfigAllowsMidFunctionIndirectCall)
{
    // Without CFI the same target does not trip a label check (it
    // still has to be a function entry to make sense to the decoder —
    // so call the entry directly through a register).
    Rig rig(sim::VgConfig::native());
    const char *src = R"(
func @target(1) {
entry:
  ret %0
}

func @f(0) {
entry:
  %0 = funcaddr @target
  %1 = const 11
  %2 = callind %0(%1)
  ret %2
}
)";
    auto r = rig.run(src, "f", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.value, 11u);
}

TEST(Cfi, ChecksAddLatency)
{
    auto time_run = [](sim::VgConfig cfg) {
        Rig rig(cfg);
        const char *src = R"(
func @callee(1) {
entry:
  ret %0
}

func @f(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = call @callee(%2)
  %1 = add %1, %4
  %5 = const 1
  %2 = add %2, %5
  br head
done:
  ret %1
}
)";
        sim::Cycles before = rig.ctx.clock().now();
        auto r = rig.run(src, "f", {200});
        EXPECT_TRUE(r.ok);
        return rig.ctx.clock().now() - before;
    };

    sim::VgConfig cfi_only = sim::VgConfig::native();
    cfi_only.cfi = true;
    EXPECT_GT(time_run(cfi_only), time_run(sim::VgConfig::native()));
}

// --------------------------------------------------------------------
// Translator: cache + signatures
// --------------------------------------------------------------------

TEST(Translator, CachesBySource)
{
    Rig rig;
    const char *src = "func @f(0) {\nentry:\n  %0 = const 1\n  ret %0\n}\n";
    auto t1 = rig.translator.translateText(src, kCodeBase);
    auto t2 = rig.translator.translateText(src, kCodeBase);
    ASSERT_TRUE(t1.ok && t2.ok);
    EXPECT_FALSE(t1.fromCache);
    EXPECT_TRUE(t2.fromCache);
    EXPECT_EQ(t1.image.get(), t2.image.get());
    EXPECT_EQ(rig.translator.cacheHits(), 1u);
}

TEST(Translator, SignatureVerifies)
{
    Rig rig;
    const char *src = "func @f(0) {\nentry:\n  %0 = const 1\n  ret %0\n}\n";
    auto t = rig.translator.translateText(src, kCodeBase);
    ASSERT_TRUE(t.ok);
    EXPECT_TRUE(rig.translator.verifySignature(*t.image));

    // Tampering with the cached translation must be detected.
    MachineImage tampered = *t.image;
    tampered.code[1].imm ^= 1;
    EXPECT_FALSE(rig.translator.verifySignature(tampered));
}

TEST(Translator, DifferentKeyCannotForge)
{
    sim::SimContext ctx;
    Translator a(kKey, ctx);
    Translator b(std::vector<uint8_t>(32, 0x22), ctx);
    const char *src = "func @f(0) {\nentry:\n  %0 = const 1\n  ret %0\n}\n";
    auto t = a.translateText(src, kCodeBase);
    ASSERT_TRUE(t.ok);
    EXPECT_FALSE(b.verifySignature(*t.image));
}

TEST(Translator, RejectsMalformedModules)
{
    Rig rig;
    auto t1 = rig.translator.translateText("func @f(0) {\nentry:\n  %0 = "
                                           "const 1\n}\n",
                                           kCodeBase);
    EXPECT_FALSE(t1.ok); // no terminator
    auto t2 = rig.translator.translateText("not vir at all", kCodeBase);
    EXPECT_FALSE(t2.ok);
}

TEST(Translator, InstrumentationGrowsCode)
{
    const char *src = R"(
func @f(2) {
entry:
  %2 = load.i64 %0
  store.i64 %1, %2
  ret %2
}
)";
    sim::SimContext vg_ctx(sim::VgConfig::full());
    sim::SimContext nat_ctx(sim::VgConfig::native());
    Translator vg_tr(kKey, vg_ctx);
    Translator nat_tr(kKey, nat_ctx);
    auto tv = vg_tr.translateText(src, kCodeBase);
    auto tn = nat_tr.translateText(src, kCodeBase);
    ASSERT_TRUE(tv.ok && tn.ok);
    EXPECT_GT(tv.image->code.size(), tn.image->code.size());
    EXPECT_TRUE(tv.image->instrumented);
    EXPECT_FALSE(tn.image->instrumented);
}

// --------------------------------------------------------------------
// mmap masking pass (application side, anti-Iago)
// --------------------------------------------------------------------

TEST(MmapMask, MasksGhostReturnFromMmap)
{
    sim::SimContext ctx;
    auto parsed = vir::parse(R"(
func @app(0) {
entry:
  %0 = const 0
  %1 = call @mmap(%0)
  ret %1
}
)");
    ASSERT_TRUE(parsed.ok);
    PassStats stats = mmapMaskPass(parsed.module, {"mmap"});
    EXPECT_EQ(stats.sitesInstrumented, 1u);

    Translator tr(kKey, ctx);
    auto t = tr.translateModule(std::move(parsed.module), kCodeBase);
    ASSERT_TRUE(t.ok) << t.error;

    FlatPort port;
    ExternTable externs;
    // Hostile kernel returns a pointer into ghost memory (Iago).
    externs.fns["mmap"] = [](const std::vector<uint64_t> &) {
        return hw::ghostBase + 0x1000;
    };
    Executor exec(*t.image, port, externs, ctx, kStackBase, kStackSize);
    auto r = exec.call("app", {});
    ASSERT_TRUE(r.ok) << r.detail;
    EXPECT_FALSE(hw::isGhostAddr(r.value));
    EXPECT_EQ(r.value, (hw::ghostBase + 0x1000) | hw::sandboxOrMask);
}

// --------------------------------------------------------------------
// Peephole fusion around CFI boundaries: fusing must never move or
// absorb a CfiLabel/CheckRet, and a label spliced into a mask sequence
// must block fusion of that sequence rather than vanish into it.
// --------------------------------------------------------------------

namespace
{

size_t
countOp(const std::vector<MInst> &code, MOp op)
{
    size_t n = 0;
    for (const MInst &m : code)
        n += m.op == op;
    return n;
}

bool
isCall(MOp op)
{
    return op == MOp::CallDirect || op == MOp::CallExt ||
           op == MOp::CallInd || op == MOp::CallIndChecked;
}

} // namespace

TEST(Peephole, FusionNeverMovesOrAbsorbsCfiInstructions)
{
    // Run cfiPass *before* fusing — the hostile order, where a greedy
    // peephole could swallow a label adjacent to (or inside) the
    // pattern it matches. Labels, CheckRets and call/label adjacency
    // must all survive fusion untouched.
    auto parsed = vir::parse(R"(
func @f(2) {
entry:
  %2 = load.i64 %0
  store.i64 %1, %2
  %3 = call @g(%2)
  %4 = const 8
  memcpy %0, %1, %4
  ret %3
}

func @g(1) {
entry:
  ret %0
}
)");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    sandboxPass(parsed.module);
    for (const auto &fn : parsed.module.functions) {
        LoweredFunc lf = lowerFunction(fn);
        cfiPass(lf.code);
        size_t labels = countOp(lf.code, MOp::CfiLabel);
        size_t checkrets = countOp(lf.code, MOp::CheckRet);
        ASSERT_GT(labels, 0u);

        PassStats fs = fuseSandboxPass(lf.code);
        if (fn.name == "f") {
            EXPECT_EQ(fs.sitesInstrumented, 4u); // load+store+2 memcpy
        }

        EXPECT_EQ(countOp(lf.code, MOp::CfiLabel), labels) << fn.name;
        EXPECT_EQ(countOp(lf.code, MOp::CheckRet), checkrets) << fn.name;
        EXPECT_EQ(lf.code.front().op, MOp::CfiLabel) << fn.name;
        for (size_t i = 0; i < lf.code.size(); i++) {
            if (!isCall(lf.code[i].op))
                continue;
            ASSERT_LT(i + 1, lf.code.size());
            EXPECT_EQ(lf.code[i + 1].op, MOp::CfiLabel)
                << fn.name << " call at " << i
                << " lost its return-site label";
        }
    }
}

TEST(Peephole, LabelSplicedIntoMaskSequenceBlocksFusion)
{
    auto parsed = vir::parse(R"(
func @peek(1) {
entry:
  %1 = load.i64 %0
  ret %1
}
)");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    sandboxPass(parsed.module);
    LoweredFunc lf = lowerFunction(parsed.module.functions[0]);

    // Pristine code fuses its one masking sequence...
    std::vector<MInst> pristine = lf.code;
    PassStats all = fuseSandboxPass(pristine);
    EXPECT_EQ(all.sitesInstrumented, 1u);

    // ...but with a CfiLabel spliced into the sequence interior the
    // pattern no longer matches: the label must survive, unfused.
    int dst = -1;
    size_t seq = SIZE_MAX;
    for (size_t i = 0; i < lf.code.size(); i++)
        if (matchSandboxMaskSeq(lf.code, i, dst) >= 0) {
            seq = i;
            break;
        }
    ASSERT_NE(seq, SIZE_MAX);
    MInst label;
    label.op = MOp::CfiLabel;
    label.imm = cfiLabelValue;
    lf.code.insert(lf.code.begin() + (long)(seq + 5), label);

    PassStats blocked = fuseSandboxPass(lf.code);
    EXPECT_EQ(blocked.sitesInstrumented, 0u);
    EXPECT_EQ(countOp(lf.code, MOp::CfiLabel), 1u);
    EXPECT_EQ(countOp(lf.code, MOp::SandboxAddr), 0u);
}

TEST(Peephole, FusedAndUnfusedTranslationsBothPassTheVerifier)
{
    const char *src = R"(
func @worker(2) {
entry:
  %2 = const 8
  memcpy %1, %0, %2
  %3 = load.i64 %1
  store.i64 %0, %3
  %4 = call @worker(%3, %1)
  ret %4
}
)";
    std::vector<std::shared_ptr<const MachineImage>> images;
    for (bool fuse : {true, false}) {
        sim::VgConfig cfg = sim::VgConfig::full();
        cfg.fuseSandboxMasks = fuse;
        sim::SimContext ctx(cfg);
        Translator translator(kKey, ctx);
        // The translator's own verifyMcode gate is on: translation
        // succeeding already implies 0 findings.
        auto tr = translator.translateText(src, kCodeBase);
        ASSERT_TRUE(tr.ok) << tr.error;
        EXPECT_EQ(tr.mverify.findings.size(), 0u);
        images.push_back(tr.image);
    }
    // Fusion must not change the CFI skeleton, only compress masks.
    EXPECT_EQ(countOp(images[0]->code, MOp::CfiLabel),
              countOp(images[1]->code, MOp::CfiLabel));
    EXPECT_EQ(countOp(images[0]->code, MOp::CheckRet),
              countOp(images[1]->code, MOp::CheckRet));
    EXPECT_GT(countOp(images[0]->code, MOp::SandboxAddr), 0u);
    EXPECT_EQ(countOp(images[1]->code, MOp::SandboxAddr), 0u);
    EXPECT_LT(images[0]->code.size(), images[1]->code.size());
}
