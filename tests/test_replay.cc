/**
 * @file
 * Rollback/replay protection (the paper's S 10 future-work question:
 * "how should applications ensure that the OS does not perform replay
 * attacks by providing older versions of previously encrypted
 * files?"). Our answer: TPM monotonic counters exposed through the VM
 * bind each versioned write to a value the OS cannot rewind.
 */

#include <gtest/gtest.h>

#include "ghost/runtime.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

SystemConfig
cfg()
{
    SystemConfig c;
    c.memFrames = 4096;
    c.diskBlocks = 4096;
    c.rsaBits = 384;
    return c;
}

std::vector<uint8_t>
bytes(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

} // namespace

TEST(Tpm, MonotonicCountersNeverGoBackwards)
{
    hw::Tpm tpm({'c'});
    EXPECT_EQ(tpm.monotonicRead(1), 0u);
    EXPECT_EQ(tpm.monotonicIncrement(1), 1u);
    EXPECT_EQ(tpm.monotonicIncrement(1), 2u);
    EXPECT_EQ(tpm.monotonicRead(1), 2u);
    EXPECT_EQ(tpm.monotonicRead(2), 0u); // independent counters
    EXPECT_EQ(tpm.monotonicIncrement(2), 1u);
    EXPECT_EQ(tpm.monotonicRead(1), 2u);
}

TEST(Replay, VersionedRoundtrip)
{
    System sys(cfg());
    sys.boot();
    crypto::AesKey key{};
    sva::AppBinary bin = sys.vm().packageApp("vapp", "vcode", key);

    int code = sys.runProcess("v", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            if (!rt.writeVersionedFile("/cfg", bytes("version-1")))
                return 1;
            std::vector<uint8_t> out;
            if (!rt.readVersionedFile("/cfg", out))
                return 2;
            if (out != bytes("version-1"))
                return 3;
            // Update in place: still readable.
            if (!rt.writeVersionedFile("/cfg", bytes("version-2")))
                return 4;
            if (!rt.readVersionedFile("/cfg", out))
                return 5;
            if (out != bytes("version-2"))
                return 6;
            return 0;
        });
    });
    EXPECT_EQ(code, 0);
}

TEST(Replay, OsReplayOfOldVersionRejected)
{
    System sys(cfg());
    sys.boot();
    crypto::AesKey key{};
    sva::AppBinary bin = sys.vm().packageApp("vapp", "vcode", key);

    // First run: write v1; the hostile OS archives the raw file.
    std::vector<uint8_t> archived;
    sys.runProcess("writer1", [&](UserApi &api) {
        return api.execve(&bin, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeVersionedFile("/cfg", bytes("old-policy"));
            return 0;
        });
    });
    {
        Ino ino = 0;
        ASSERT_EQ(sys.kernel().fs().lookup("/cfg", ino), FsStatus::Ok);
        FileStat st;
        sys.kernel().fs().stat(ino, st);
        archived.resize(st.size);
        sys.kernel().fs().read(ino, 0, archived.data(), st.size);
    }

    // Second run: write v2 (e.g. a revoked-keys update).
    sys.runProcess("writer2", [&](UserApi &api) {
        return api.execve(&bin, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeVersionedFile("/cfg", bytes("new-policy"));
            return 0;
        });
    });

    // The OS replays the *old*, validly-sealed file.
    {
        Ino ino = 0;
        sys.kernel().fs().lookup("/cfg", ino);
        sys.kernel().fs().truncate(ino);
        sys.kernel().fs().write(ino, 0, archived.data(),
                                archived.size());
    }

    // The application detects the rollback.
    int code = sys.runProcess("reader", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> out;
            // Replayed old version must NOT verify.
            return rt.readVersionedFile("/cfg", out) ? 1 : 0;
        });
    });
    EXPECT_EQ(code, 0);
}

TEST(Replay, UnversionedFilesRemainReplayable)
{
    // Negative control: plain secure files (no counter) do not detect
    // replay — which is exactly why the paper flags it as an open
    // problem.
    System sys(cfg());
    sys.boot();
    crypto::AesKey key{};
    sva::AppBinary bin = sys.vm().packageApp("vapp", "vcode", key);

    std::vector<uint8_t> archived;
    sys.runProcess("w1", [&](UserApi &api) {
        return api.execve(&bin, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeSecureFile("/plain", bytes("old"));
            return 0;
        });
    });
    Ino ino = 0;
    sys.kernel().fs().lookup("/plain", ino);
    FileStat st;
    sys.kernel().fs().stat(ino, st);
    archived.resize(st.size);
    sys.kernel().fs().read(ino, 0, archived.data(), st.size);

    sys.runProcess("w2", [&](UserApi &api) {
        return api.execve(&bin, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeSecureFile("/plain", bytes("new"));
            return 0;
        });
    });
    sys.kernel().fs().truncate(ino);
    sys.kernel().fs().write(ino, 0, archived.data(), archived.size());

    int code = sys.runProcess("r", [&](UserApi &api) {
        return api.execve(&bin, [](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> out;
            bool ok = rt.readSecureFile("/plain", out);
            // The replayed file decrypts fine — and is stale.
            return ok && out == bytes("old") ? 0 : 1;
        });
    });
    EXPECT_EQ(code, 0);
}

TEST(Replay, CountersArePerApplication)
{
    System sys(cfg());
    sys.boot();
    crypto::AesKey key{};
    sva::AppBinary a = sys.vm().packageApp("app-a", "ca", key);
    sva::AppBinary b = sys.vm().packageApp("app-b", "cb", key);

    sys.runProcess("a", [&](UserApi &api) {
        return api.execve(&a, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            rt.writeVersionedFile("/a1", bytes("x"));
            rt.writeVersionedFile("/a2", bytes("y"));
            return 0;
        });
    });
    // app-b's first versioned write starts at its own counter = 1;
    // its reads are unaffected by app-a's activity.
    int code = sys.runProcess("b", [&](UserApi &api) {
        return api.execve(&b, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            if (!rt.writeVersionedFile("/b1", bytes("z")))
                return 1;
            std::vector<uint8_t> out;
            return rt.readVersionedFile("/b1", out) &&
                           out == bytes("z")
                       ? 0
                       : 2;
        });
    });
    EXPECT_EQ(code, 0);
}
