/**
 * @file
 * Unit tests for the deterministic interleavers (sim/interleave.hh):
 * SplitMix64 sub-stream forking and the SeededInterleaver's fork-tree
 * determinism, seed sensitivity and child-stream independence. These
 * are the reproducibility primitives under every fleet run — a
 * regression here silently breaks bit-identical replays.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/interleave.hh"

using namespace vg::sim;

namespace
{

/** Drain @p rounds schedules from an interleaver over @p n busy
 *  machines, flattening into one order trace. */
std::vector<unsigned>
trace(SeededInterleaver &il, unsigned n, unsigned rounds)
{
    std::vector<uint8_t> busy(n, 1);
    std::vector<unsigned> out;
    for (unsigned r = 0; r < rounds; r++) {
        auto order = il.schedule(busy);
        out.insert(out.end(), order.begin(), order.end());
    }
    return out;
}

} // namespace

TEST(SplitMix64, StreamsAreDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SubStreamsAreStableAndDistinct)
{
    SplitMix64 rng(7);
    // sub() is const: forking must not disturb the parent stream, and
    // the same index always yields the same child seed.
    uint64_t parentBefore = SplitMix64(7).next();
    uint64_t s3 = rng.sub(3);
    EXPECT_EQ(rng.sub(3), s3);
    EXPECT_EQ(rng.next(), parentBefore);

    // Distinct indices give distinct child seeds (no collisions over a
    // realistic fleet size).
    std::set<uint64_t> seeds;
    for (unsigned i = 0; i < 4096; i++)
        seeds.insert(rng.sub(i));
    EXPECT_EQ(seeds.size(), 4096u);
}

TEST(SplitMix64, BoundedDrawsStayInRange)
{
    SplitMix64 rng(99);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(rng.below(17), 17u);
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_GE(rng.exponential(3.0), 0.0);
    }
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(SeededInterleaver, SameSeedReplaysBitIdentically)
{
    SeededInterleaver a(1234, 8), b(1234, 8);
    EXPECT_EQ(trace(a, 8, 64), trace(b, 8, 64));
}

TEST(SeededInterleaver, DifferentSeedsDiverge)
{
    SeededInterleaver a(1234, 8), b(1235, 8);
    EXPECT_NE(trace(a, 8, 64), trace(b, 8, 64));
}

TEST(SeededInterleaver, ScheduleCoversExactlyTheBusyMachines)
{
    SeededInterleaver il(5, 6);
    std::vector<uint8_t> busy = {1, 0, 1, 1, 0, 1};
    for (int r = 0; r < 32; r++) {
        auto order = il.schedule(busy);
        ASSERT_EQ(order.size(), 4u);
        std::set<unsigned> seen(order.begin(), order.end());
        EXPECT_EQ(seen, (std::set<unsigned>{0, 2, 3, 5}));
    }
    // Idle fleet: empty schedule, and drawing it doesn't wedge the
    // stream (permuting 0 or 1 machines consumes no RNG words).
    std::vector<uint8_t> idle(6, 0);
    EXPECT_TRUE(il.schedule(idle).empty());
}

TEST(SeededInterleaver, PermutationsActuallyVary)
{
    // Fisher-Yates over 8 busy machines must not degenerate into a
    // fixed rotation: over enough rounds we see many distinct orders.
    SeededInterleaver il(77, 8);
    std::vector<uint8_t> busy(8, 1);
    std::set<std::vector<unsigned>> orders;
    for (int r = 0; r < 256; r++)
        orders.insert(il.schedule(busy));
    EXPECT_GT(orders.size(), 100u);
}

TEST(SeededInterleaver, ForkTreeIsDeterministic)
{
    // machineSeed(i) is a pure function of (seed, i): recomputing the
    // whole fork tree from an identical parent gives identical leaves,
    // and drawing schedules in between must not shift them (sub() is
    // const on the underlying stream).
    SeededInterleaver a(2026, 16), b(2026, 16);
    std::vector<uint64_t> leavesA, leavesB;
    for (unsigned i = 0; i < 16; i++)
        leavesA.push_back(a.machineSeed(i));
    trace(b, 16, 8);
    for (unsigned i = 0; i < 16; i++)
        leavesB.push_back(b.machineSeed(i));
    EXPECT_NE(leavesA, leavesB); // schedule() advanced b's stream...
    SeededInterleaver c(2026, 16);
    std::vector<uint64_t> leavesC;
    for (unsigned i = 0; i < 16; i++)
        leavesC.push_back(c.machineSeed(i));
    EXPECT_EQ(leavesA, leavesC); // ...but a fresh replay matches.
}

TEST(SeededInterleaver, ChildStreamsAreIndependent)
{
    // Two machines' private streams (seeded from adjacent fork
    // indices) must not correlate: their draw sequences differ, and
    // consuming one stream never perturbs the other.
    SeededInterleaver il(31337, 4);
    SplitMix64 m0(il.machineSeed(0));
    SplitMix64 m1(il.machineSeed(1));

    std::vector<uint64_t> s0, s1;
    for (int i = 0; i < 256; i++)
        s0.push_back(m0.next());
    for (int i = 0; i < 256; i++)
        s1.push_back(m1.next());
    EXPECT_NE(s0, s1);

    // No lag-correlation either: m1's stream is not m0's shifted.
    for (int lag = 1; lag < 8; lag++) {
        bool shifted = std::equal(s0.begin() + lag, s0.end(),
                                  s1.begin());
        EXPECT_FALSE(shifted) << "child streams correlate at lag "
                              << lag;
    }

    // Replaying machine 1's stream from the same leaf seed is exact,
    // independent of how much machine 0 consumed.
    SplitMix64 m1Again(il.machineSeed(1));
    for (int i = 0; i < 256; i++)
        EXPECT_EQ(m1Again.next(), s1[size_t(i)]);
}

TEST(SeededInterleaver, SharedStreamIsTheScheduleStream)
{
    // rng() exposes the same stream schedule() draws from: pulling a
    // word from it changes subsequent schedules exactly as if a
    // schedule round had consumed it.
    SeededInterleaver a(9, 8), b(9, 8);
    std::vector<uint8_t> busy(8, 1);
    (void)a.rng().next();
    auto ordA = a.schedule(busy);
    (void)b.rng().next();
    auto ordB = b.schedule(busy);
    EXPECT_EQ(ordA, ordB);
}
