/**
 * @file
 * Hardware substrate tests: physical memory, MMU walker + TLB, IOMMU,
 * disk/NIC DMA, TPM, timer.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hw/disk.hh"
#include "hw/iommu.hh"
#include "hw/layout.hh"
#include "hw/mmu.hh"
#include "hw/nic.hh"
#include "hw/phys_mem.hh"
#include "hw/timer.hh"
#include "hw/tpm.hh"
#include "sim/context.hh"

using namespace vg;
using namespace vg::hw;

namespace
{

/** Build a 4-level mapping by hand: frames 1..3 are tables under the
 *  root in frame 0; returns the leaf slot written. */
void
handMap(PhysMem &mem, Vaddr va, Frame target, bool writable, bool user)
{
    // root = frame 0, L3 = frame 1, L2 = frame 2, L1 = frame 3.
    mem.write64(0 * pageSize + ptIndex(va, PtLevel::L4) * 8,
                pte::make(1, true, true, false));
    mem.write64(1 * pageSize + ptIndex(va, PtLevel::L3) * 8,
                pte::make(2, true, true, false));
    mem.write64(2 * pageSize + ptIndex(va, PtLevel::L2) * 8,
                pte::make(3, true, true, false));
    mem.write64(3 * pageSize + ptIndex(va, PtLevel::L1) * 8,
                pte::make(target, writable, user, false));
}

} // namespace

TEST(PhysMem, ReadWriteRoundtrip)
{
    PhysMem mem(16);
    mem.write8(100, 0xab);
    EXPECT_EQ(mem.read8(100), 0xab);
    mem.write64(4096, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(4096), 0x1122334455667788ull);
    mem.write32(8, 0xdeadbeef);
    EXPECT_EQ(mem.read32(8), 0xdeadbeefu);
    mem.write16(20, 0xcafe);
    EXPECT_EQ(mem.read16(20), 0xcafe);
}

TEST(PhysMem, BulkAndZero)
{
    PhysMem mem(4);
    std::vector<uint8_t> data(100, 0x5a);
    mem.writeBytes(500, data.data(), data.size());
    std::vector<uint8_t> back(100);
    mem.readBytes(500, back.data(), back.size());
    EXPECT_EQ(back, data);
    mem.zeroFrame(0);
    EXPECT_EQ(mem.read8(500), 0);
}

TEST(PhysMem, FrameAccounting)
{
    PhysMem mem(8);
    EXPECT_EQ(mem.numFrames(), 8u);
    EXPECT_EQ(mem.sizeBytes(), 8 * pageSize);
    EXPECT_TRUE(mem.valid(8 * pageSize - 1));
    EXPECT_FALSE(mem.valid(8 * pageSize));
    EXPECT_TRUE(mem.validFrame(7));
    EXPECT_FALSE(mem.validFrame(8));
}

TEST(Layout, SandboxTransform)
{
    // Ghost addresses are pushed into the kernel half.
    Vaddr ghost = ghostBase + 0x1234;
    Vaddr masked = sandboxAddress(ghost);
    EXPECT_FALSE(isGhostAddr(masked));
    EXPECT_EQ(masked, ghost | sandboxOrMask);

    // SVA internal addresses collapse to 0.
    EXPECT_EQ(sandboxAddress(svaBase + 64), 0u);

    // User and ordinary kernel addresses pass through.
    EXPECT_EQ(sandboxAddress(0x400000), 0x400000u);
    Vaddr kern = kernelBase + 0x999;
    EXPECT_EQ(sandboxAddress(kern), kern | sandboxOrMask);
    EXPECT_EQ(kern | sandboxOrMask, kern); // already has bit 39 set
}

TEST(Mmu, TranslateMappedPage)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    handMap(mem, 0x400000, 5, true, true);
    mmu.setRoot(0);

    auto r = mmu.translate(0x400123, Access::Read, Privilege::User);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.paddr, 5 * pageSize + 0x123);
}

TEST(Mmu, TlbHitIsCheaperThanWalk)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    handMap(mem, 0x400000, 5, true, true);
    mmu.setRoot(0);

    sim::Stopwatch sw(ctx.clock());
    mmu.translate(0x400000, Access::Read, Privilege::User);
    sim::Cycles walk_cost = sw.elapsed();
    sw.restart();
    mmu.translate(0x400008, Access::Read, Privilege::User);
    sim::Cycles hit_cost = sw.elapsed();
    EXPECT_LT(hit_cost, walk_cost);
    EXPECT_EQ(ctx.stats().get("mmu.tlb_hits"), 1u);
    EXPECT_EQ(ctx.stats().get("mmu.tlb_misses"), 1u);
}

TEST(Mmu, PermissionChecks)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    handMap(mem, 0x400000, 5, false, false); // read-only, kernel-only
    mmu.setRoot(0);

    auto w = mmu.translate(0x400000, Access::Write, Privilege::Kernel);
    EXPECT_FALSE(w.ok);
    EXPECT_EQ(w.fault, FaultKind::Protection);

    auto u = mmu.translate(0x400000, Access::Read, Privilege::User);
    EXPECT_FALSE(u.ok);
    EXPECT_EQ(u.fault, FaultKind::Protection);

    auto k = mmu.translate(0x400000, Access::Read, Privilege::Kernel);
    EXPECT_TRUE(k.ok);
}

TEST(Mmu, NotPresentFaults)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    mmu.setRoot(0);
    auto r = mmu.translate(0x400000, Access::Read, Privilege::Kernel);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, FaultKind::NotPresent);
}

TEST(Mmu, NonCanonicalFaults)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    mmu.setRoot(0);
    auto r = mmu.translate(0x0000900000000000ull, Access::Read,
                           Privilege::Kernel);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, FaultKind::NonCanonical);
}

TEST(Mmu, InvalidatePageDropsStaleTlbEntry)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    handMap(mem, 0x400000, 5, true, true);
    mmu.setRoot(0);
    mmu.translate(0x400000, Access::Read, Privilege::User);

    // Change the mapping behind the TLB's back, then invalidate.
    mem.write64(3 * pageSize + ptIndex(0x400000, PtLevel::L1) * 8,
                pte::make(6, true, true, false));
    mmu.invalidatePage(0x400000);
    auto r = mmu.translate(0x400000, Access::Read, Privilege::User);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.paddr, 6 * pageSize);
}

TEST(Mmu, ProbeDoesNotChargeTime)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Mmu mmu(mem, ctx);
    handMap(mem, 0x400000, 5, true, true);
    mmu.setRoot(0);
    sim::Cycles before = ctx.clock().now();
    auto pte_val = mmu.probe(0x400000);
    EXPECT_EQ(ctx.clock().now(), before);
    ASSERT_TRUE(pte_val.has_value());
    EXPECT_EQ(pte::frameNum(*pte_val), 5u);
    EXPECT_FALSE(mmu.probe(0x500000).has_value());
}

TEST(Iommu, BlocksProtectedFrames)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    uint8_t buf[16] = {1, 2, 3};

    EXPECT_TRUE(iommu.dmaWrite(5 * pageSize, buf, 16));
    iommu.protectFrame(5);
    EXPECT_FALSE(iommu.dmaWrite(5 * pageSize, buf, 16));
    EXPECT_FALSE(iommu.dmaRead(5 * pageSize, buf, 16));
    EXPECT_EQ(iommu.blockedCount(), 2u);
    iommu.unprotectFrame(5);
    EXPECT_TRUE(iommu.dmaRead(5 * pageSize, buf, 16));
}

TEST(Iommu, RangeStraddlingProtectedFrameBlocked)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    iommu.protectFrame(6);
    uint8_t buf[64];
    // Range ends inside frame 6.
    EXPECT_FALSE(iommu.dmaRead(6 * pageSize - 32, buf, 64));
    // Range entirely in frame 5 is fine.
    EXPECT_TRUE(iommu.dmaRead(5 * pageSize, buf, 64));
}

TEST(Iommu, DisabledProtectionAllowsDma)
{
    sim::SimContext ctx(sim::VgConfig::native());
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    iommu.protectFrame(5);
    uint8_t buf[16];
    EXPECT_TRUE(iommu.dmaRead(5 * pageSize, buf, 16));
}

TEST(Disk, BufferedReadWrite)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    Disk disk(64, iommu, ctx);

    std::vector<uint8_t> block(Disk::blockSize, 0x7e);
    sim::Cycles before = ctx.clock().now();
    disk.writeBlock(3, block.data());
    EXPECT_GT(ctx.clock().now(), before); // latency charged

    std::vector<uint8_t> back(Disk::blockSize);
    disk.readBlock(3, back.data());
    EXPECT_EQ(back, block);
}

TEST(Disk, DmaPathRespectsIommu)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    Disk disk(64, iommu, ctx);

    std::memset(disk.rawBlock(7), 0x42, Disk::blockSize);
    EXPECT_TRUE(disk.dmaReadBlock(7, 2 * pageSize));
    EXPECT_EQ(mem.read8(2 * pageSize), 0x42);

    iommu.protectFrame(3);
    EXPECT_FALSE(disk.dmaReadBlock(7, 3 * pageSize));
    EXPECT_FALSE(disk.dmaWriteBlock(7, 3 * pageSize));
}

TEST(Nic, PairDelivery)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    Nic a(iommu, ctx), b(iommu, ctx);
    a.connectTo(&b);
    b.connectTo(&a);

    a.send({1, 2, 3});
    ASSERT_TRUE(b.hasPacket());
    EXPECT_EQ(b.receive(), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_FALSE(b.hasPacket());
    EXPECT_EQ(a.packetsSent(), 1u);
    EXPECT_EQ(b.packetsReceived(), 1u);
}

TEST(Nic, WireTimeScalesWithBytes)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    Nic a(iommu, ctx), b(iommu, ctx);
    a.connectTo(&b);

    // Wire occupancy is booked on the link schedule, not the CPU.
    uint64_t t0 = ctx.clock().now();
    uint64_t r1 = a.send(std::vector<uint8_t>(100, 0));
    uint64_t cpu1 = ctx.clock().now() - t0;
    uint64_t wire1 = r1 - t0;

    uint64_t t1 = ctx.clock().now();
    uint64_t r2 = a.send(std::vector<uint8_t>(1400, 0));
    uint64_t wire2 = r2 - r1;
    EXPECT_GT(wire2, wire1);
    // Sender CPU charge does not scale with packet size.
    EXPECT_EQ(ctx.clock().now() - t1, cpu1);
    // Back-to-back packets serialize on the link.
    EXPECT_GT(r2, r1);
}

TEST(Nic, DmaSendBlockedByIommu)
{
    sim::SimContext ctx;
    PhysMem mem(16);
    Iommu iommu(mem, ctx);
    Nic a(iommu, ctx), b(iommu, ctx);
    a.connectTo(&b);
    iommu.protectFrame(4);
    EXPECT_FALSE(a.sendFromDma(4 * pageSize, 100));
    EXPECT_TRUE(a.sendFromDma(5 * pageSize, 100));
    EXPECT_TRUE(b.hasPacket());
}

TEST(Tpm, SealUnsealRoundtrip)
{
    Tpm tpm({'t', 'e', 's', 't'});
    std::vector<uint8_t> secret = {9, 9, 9};
    auto blob = tpm.seal(secret);
    bool ok = false;
    EXPECT_EQ(tpm.unseal(blob, ok), secret);
    EXPECT_TRUE(ok);
}

TEST(Tpm, DetectsTampering)
{
    Tpm tpm({'t'});
    auto blob = tpm.seal({1, 2, 3});
    blob.ciphertext[0] ^= 1;
    bool ok = true;
    tpm.unseal(blob, ok);
    EXPECT_FALSE(ok);
}

TEST(Tpm, DifferentTpmsCannotUnseal)
{
    Tpm tpm1({'a'});
    Tpm tpm2({'b'});
    auto blob = tpm1.seal({5});
    bool ok = true;
    tpm2.unseal(blob, ok);
    EXPECT_FALSE(ok);
}

TEST(Timer, FiresOnSchedule)
{
    sim::Clock clock;
    Timer timer(clock);
    EXPECT_FALSE(timer.due());
    timer.setInterval(1000);
    EXPECT_FALSE(timer.due());
    clock.advance(999);
    EXPECT_FALSE(timer.due());
    clock.advance(1);
    EXPECT_TRUE(timer.due());
    timer.acknowledge();
    EXPECT_FALSE(timer.due());
    clock.advance(1000);
    EXPECT_TRUE(timer.due());
}

TEST(Timer, AcknowledgeSkipsMissedPeriods)
{
    sim::Clock clock;
    Timer timer(clock);
    timer.setInterval(100);
    clock.advance(1000);
    EXPECT_TRUE(timer.due());
    timer.acknowledge();
    EXPECT_FALSE(timer.due());
    clock.advance(100);
    EXPECT_TRUE(timer.due());
}
