/**
 * @file
 * Kernel-level ghost swapping (S 3.3) and the DMA attack vector
 * (S 2.2.1 / S 4.3.3): the OS may swap ghost pages but sees only
 * ciphertext; devices cannot be pointed at ghost frames.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

SystemConfig
cfg(sim::VgConfig vg = sim::VgConfig::full())
{
    SystemConfig c;
    c.vg = vg;
    c.memFrames = 4096;
    c.diskBlocks = 4096;
    c.rsaBits = 384;
    return c;
}

} // namespace

TEST(GhostSwap, RoundtripThroughOsSwapStore)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("swapper", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(4);
        const char *secret = "swap me out and back";
        EXPECT_TRUE(api.ghostWrite(gva, secret, 20));
        EXPECT_TRUE(api.ghostWrite(gva + 3 * hw::pageSize, "tail", 4));

        // Memory pressure: the OS swaps all four pages out.
        EXPECT_EQ(sys.kernel().swapOutGhost(api.pid(), 100), 4u);
        EXPECT_EQ(sys.vm().ghostPageCount(api.pid()), 0u);
        EXPECT_EQ(sys.kernel().swappedGhostPages(api.pid()), 4u);

        // Transparent swap-in on the next access.
        char back[24] = {};
        EXPECT_TRUE(api.ghostRead(gva, back, 20));
        EXPECT_EQ(std::memcmp(back, secret, 20), 0);
        EXPECT_TRUE(api.ghostRead(gva + 3 * hw::pageSize, back, 4));
        EXPECT_EQ(std::memcmp(back, "tail", 4), 0);
        EXPECT_EQ(sys.kernel().swappedGhostPages(api.pid()), 2u);
        EXPECT_GT(sys.ctx().stats().get("kernel.ghost_swapins"), 0u);
        return 0;
    });
}

TEST(GhostSwap, OsSeesOnlyCiphertext)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("swapper", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        const char *secret = "PLAINTEXT-MARKER";
        api.ghostWrite(gva, secret, 16);
        sys.kernel().swapOutGhost(api.pid(), 1);

        // The OS can read the swap slot back — and sees ciphertext.
        auto blob = sys.kernel().readSwappedBlob(api.pid(), gva);
        EXPECT_TRUE(blob.has_value());
        if (!blob)
            return 1;
        std::string ct(blob->ciphertext.begin(),
                       blob->ciphertext.end());
        EXPECT_EQ(ct.find(secret), std::string::npos);

        // Same story on the raw platter: the slot's disk blocks hold
        // no plaintext either.
        auto block = sys.kernel().swapSlotBlock(api.pid(), gva);
        EXPECT_TRUE(block.has_value());
        if (!block)
            return 1;
        std::string raw(
            reinterpret_cast<char *>(sys.disk().rawBlock(*block)),
            hw::Disk::blockSize);
        EXPECT_EQ(raw.find(secret), std::string::npos);
        return 0;
    });
}

TEST(GhostSwap, TamperedSwapPageRefused)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("swapper", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "x", 1);
        sys.kernel().swapOutGhost(api.pid(), 1);

        // Hostile OS flips a ciphertext bit directly on the platter
        // (the swap slot is ordinary disk blocks it fully controls).
        auto block = sys.kernel().swapSlotBlock(api.pid(), gva);
        EXPECT_TRUE(block.has_value());
        if (!block)
            return 1;
        sys.disk().rawBlock(*block)[65] ^= 0x40;

        char c = 0;
        EXPECT_FALSE(api.ghostRead(gva, &c, 1));
        EXPECT_GT(sys.vm().violationCount(), 0u);
        return 0;
    });
}

TEST(GhostSwap, FrameReturnedToOsIsScrubbed)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("swapper", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "SCRUBME!", 8);
        // Find the physical frame before swap-out.
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Frame frame = hw::pte::frameNum(*pte);

        sys.kernel().swapOutGhost(api.pid(), 1);
        // The returned frame holds zeroes, not the secret.
        uint64_t word = sys.mem().read64(frame * hw::pageSize);
        EXPECT_EQ(word, 0u);
        return 0;
    });
}

// --------------------------------------------------------------------
// DMA attacks (S 2.2.1 bullet 3, defended per S 4.3.3)
// --------------------------------------------------------------------

TEST(DmaAttack, DiskCannotReadGhostFrames)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "DMA-TARGET-SECRET", 17);
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        // Hostile OS points the disk controller at the ghost frame.
        EXPECT_FALSE(sys.disk().dmaWriteBlock(7, pa)); // exfiltrate
        EXPECT_FALSE(sys.disk().dmaReadBlock(7, pa));  // corrupt
        EXPECT_GT(sys.iommu().blockedCount(), 0u);

        // Nothing reached the platter.
        std::string block(reinterpret_cast<char *>(sys.disk()
                                                       .rawBlock(7)),
                          hw::Disk::blockSize);
        EXPECT_EQ(block.find("DMA-TARGET-SECRET"), std::string::npos);
        return 0;
    });
}

TEST(DmaAttack, NicCannotTransmitGhostFrames)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "wire-secret", 11);
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        hw::Nic nic_a(sys.iommu(), sys.ctx());
        hw::Nic nic_b(sys.iommu(), sys.ctx());
        nic_a.connectTo(&nic_b);
        EXPECT_FALSE(nic_a.sendFromDma(pa, 64));
        EXPECT_FALSE(nic_b.hasPacket());
        return 0;
    });
}

TEST(DmaAttack, PageTableAndSvaFramesAlsoProtected)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        // The process root table frame is a PT frame.
        hw::Frame root = api.proc().rootFrame;
        EXPECT_FALSE(sys.disk().dmaWriteBlock(3, root * hw::pageSize));
        EXPECT_FALSE(sys.disk().dmaReadBlock(3, root * hw::pageSize));
        return 0;
    });
}

// --------------------------------------------------------------------
// Ring attacks (VgConfig::asyncIo): the descriptor-ring interface is a
// new hostile-OS surface — a descriptor can aim the device's DMA at a
// ghost frame, and the completion interface can be fed stale indices.
// Both must be blocked and counted, with zero disclosure.
// --------------------------------------------------------------------

TEST(RingAttack, NicTxDescriptorAtGhostFrameBlocked)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "RING-GHOST-SECRET", 17);
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        hw::Nic nic_a(sys.iommu(), sys.ctx());
        hw::Nic nic_b(sys.iommu(), sys.ctx());
        nic_a.connectTo(&nic_b);
        nic_b.connectTo(&nic_a);

        // Hostile OS posts a TX descriptor whose DMA address is the
        // ghost frame, then rings the doorbell.
        hw::RingDesc d;
        d.pa = pa;
        d.len = 64;
        d.useDma = true;
        EXPECT_TRUE(nic_a.txPost(d));
        nic_a.txDoorbell();

        // The slot completes with an error; the IOMMU refused the
        // read, the attempt was counted, and nothing hit the wire.
        auto comps = nic_a.txReapAll();
        EXPECT_EQ(comps.size(), 1u);
        if (comps.size() != 1)
            return 1;
        EXPECT_TRUE(comps[0].error);
        EXPECT_EQ(nic_a.ringBlockedDma(), 1u);
        EXPECT_GT(sys.ctx().stats().get("nic.ring_blocked_dma"), 0u);
        EXPECT_GT(sys.iommu().blockedCount(), 0u);
        EXPECT_FALSE(nic_b.hasPacket());
        return 0;
    });
}

TEST(RingAttack, NicRxDescriptorAtGhostFrameBlocked)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "keepout", 7);
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        hw::Nic nic_a(sys.iommu(), sys.ctx());
        hw::Nic nic_b(sys.iommu(), sys.ctx());
        nic_a.connectTo(&nic_b);
        nic_b.connectTo(&nic_a);
        nic_a.send(std::vector<uint8_t>(64, 0x55));

        // Hostile OS posts an RX buffer over the ghost frame,
        // attempting to corrupt ghost memory via device write.
        hw::RingDesc d;
        d.pa = pa;
        d.len = 64;
        d.useDma = true;
        EXPECT_TRUE(nic_b.rxPost(d));
        nic_b.rxDoorbell();

        auto comps = nic_b.rxReapAll();
        EXPECT_EQ(comps.size(), 1u);
        if (comps.size() != 1)
            return 1;
        EXPECT_TRUE(comps[0].error);
        EXPECT_EQ(nic_b.ringBlockedDma(), 1u);

        // The ghost page is untouched.
        char back[8] = {};
        EXPECT_TRUE(api.ghostRead(gva, back, 7));
        EXPECT_EQ(std::memcmp(back, "keepout", 7), 0);
        return 0;
    });
}

TEST(RingAttack, DiskRingDescriptorAtGhostFrameBlocked)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr gva = api.allocGhost(1);
        api.ghostWrite(gva, "DISK-RING-SECRET", 16);
        auto pte = sys.mmu().probe(gva);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        hw::Paddr pa = hw::pte::frameAddr(*pte);

        // Exfiltrate: write-to-disk request sourced from the ghost
        // frame.
        hw::RingDesc wr;
        wr.block = 11;
        wr.pa = pa;
        wr.useDma = true;
        wr.write = true;
        EXPECT_TRUE(sys.disk().submit(wr));
        sys.disk().doorbell();
        auto comps = sys.disk().reapAll();
        EXPECT_EQ(comps.size(), 1u);
        if (comps.size() != 1)
            return 1;
        EXPECT_TRUE(comps[0].error);
        EXPECT_GE(sys.disk().ringBlockedDma(), 1u);
        EXPECT_GT(sys.ctx().stats().get("disk.ring_blocked_dma"), 0u);
        std::string block(
            reinterpret_cast<char *>(sys.disk().rawBlock(11)),
            hw::Disk::blockSize);
        EXPECT_EQ(block.find("DISK-RING-SECRET"), std::string::npos);

        // Corrupt: read-from-disk request aimed at the ghost frame.
        hw::RingDesc rd;
        rd.block = 11;
        rd.pa = pa;
        rd.useDma = true;
        EXPECT_TRUE(sys.disk().submit(rd));
        sys.disk().doorbell();
        comps = sys.disk().reapAll();
        EXPECT_EQ(comps.size(), 1u);
        if (comps.size() != 1)
            return 1;
        EXPECT_TRUE(comps[0].error);
        char back[17] = {};
        EXPECT_TRUE(api.ghostRead(gva, back, 16));
        EXPECT_EQ(std::memcmp(back, "DISK-RING-SECRET", 16), 0);
        return 0;
    });
}

TEST(RingAttack, StaleCompletionReplayRejected)
{
    System sys(cfg());
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        (void)api;
        hw::Nic nic_a(sys.iommu(), sys.ctx());
        hw::Nic nic_b(sys.iommu(), sys.ctx());
        nic_a.connectTo(&nic_b);
        nic_b.connectTo(&nic_a);

        std::vector<uint8_t> payload(64, 0x2a);
        hw::RingDesc d;
        d.host = payload.data();
        d.len = 64;
        EXPECT_TRUE(nic_a.txPost(d));
        nic_a.txDoorbell();
        auto comps = nic_a.txReapAll();
        EXPECT_EQ(comps.size(), 1u);
        if (comps.size() != 1)
            return 1;
        uint32_t index = comps[0].index;
        uint32_t gen = comps[0].gen;

        // reapAll() already freed the slot and bumped its generation;
        // a hostile OS replaying the old (index, gen) pair must be
        // rejected and counted, not double-free the slot.
        EXPECT_FALSE(nic_a.txReapAt(index, gen));
        EXPECT_EQ(nic_a.staleCompletions(), 1u);
        EXPECT_GT(sys.ctx().stats().get("nic.stale_completions"), 0u);

        // A second in-flight descriptor reaped once by (index, gen)
        // works; the immediate replay of the same pair does not.
        EXPECT_TRUE(nic_a.txPost(d));
        nic_a.txDoorbell();
        const hw::DescRing &ring = nic_a.txRing();
        uint32_t idx2 = 0;
        uint32_t gen2 = 0;
        for (uint32_t i = 0; i < ring.size(); i++)
            if (ring.slot(i).state == hw::DescRing::Slot::Done) {
                idx2 = i;
                gen2 = ring.slot(i).gen;
            }
        EXPECT_TRUE(nic_a.txReapAt(idx2, gen2));
        EXPECT_FALSE(nic_a.txReapAt(idx2, gen2));
        EXPECT_EQ(nic_a.staleCompletions(), 2u);
        return 0;
    });
}

TEST(DmaAttack, BaselineKernelIsVulnerable)
{
    // Without VG the same DMA succeeds — the protection, not the
    // device model, is what stops it.
    System sys(cfg(sim::VgConfig::native()));
    sys.boot();
    sys.runProcess("victim", [&](UserApi &api) {
        hw::Vaddr va = api.mmap(hw::pageSize);
        api.poke(va, 8, 0x1122334455667788ull);
        hw::Paddr pa = 0;
        // Resolve through the page tables via a peek side effect.
        auto pte = sys.mmu().probe(va);
        EXPECT_TRUE(pte.has_value());
        if (!pte)
            return 1;
        pa = hw::pte::frameAddr(*pte);
        EXPECT_TRUE(sys.disk().dmaWriteBlock(9, pa));
        uint64_t leaked = 0;
        std::memcpy(&leaked, sys.disk().rawBlock(9), 8);
        EXPECT_EQ(leaked, 0x1122334455667788ull);
        return 0;
    });
}
