/**
 * @file
 * Fleet-scale serving tests: seeded cross-machine determinism, the
 * O(1) kernel connection table, fabric ring delivery, both L4
 * balancer policies, tenant key-chain derivation, the
 * FleetEquivalenceSweep (same seed => bit-identical request/latency
 * streams and per-machine stat rollups) and LB failover with a
 * zero-disclosure scan of the lost machine.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "apps/thttpd.hh"
#include "fleet/fleet.hh"

using namespace vg;
using namespace vg::fleet;

namespace
{

kern::SystemConfig
fleetSysConfig(unsigned vcpus = 1, uint64_t seed = 42)
{
    kern::SystemConfig cfg;
    cfg.vg = sim::VgConfig::full();
    cfg.vg.vcpus = vcpus;
    cfg.vg.seed = seed;
    cfg.memFrames = 4096;  // 16 MB per machine
    cfg.diskBlocks = 4096; // 16 MB per machine
    cfg.rsaBits = 384;
    return cfg;
}

FleetConfig
smallFleet(unsigned machines, unsigned vcpus, uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.machines = machines;
    cfg.tenants = 4;
    cfg.system = fleetSysConfig(vcpus, seed);
    cfg.requests = 16;
    cfg.openLoopRps = 8000.0;
    cfg.fileBytes = 1024;
    cfg.knobs.ghostPagesPerTenant = 4;
    cfg.knobs.concurrency = 8;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Seeded cross-machine interleaver
// ---------------------------------------------------------------------

TEST(FleetInterleaver, SameSeedSameSchedule)
{
    sim::SeededInterleaver a(7, 6), b(7, 6);
    sim::SplitMix64 work(99);
    for (int round = 0; round < 200; round++) {
        std::vector<uint8_t> has(6);
        for (auto &w : has)
            w = uint8_t(work.below(2));
        EXPECT_EQ(a.schedule(has), b.schedule(has));
    }
    // Machine sub-seeds are stable and pairwise distinct.
    std::set<uint64_t> seeds;
    for (unsigned m = 0; m < 6; m++) {
        EXPECT_EQ(a.machineSeed(m), b.machineSeed(m));
        seeds.insert(a.machineSeed(m));
    }
    EXPECT_EQ(seeds.size(), 6u);
}

TEST(FleetInterleaver, DifferentSeedDifferentSchedule)
{
    sim::SeededInterleaver a(7, 8), b(8, 8);
    std::vector<uint8_t> has(8, 1);
    bool diverged = false;
    for (int round = 0; round < 50 && !diverged; round++)
        diverged = a.schedule(has) != b.schedule(has);
    EXPECT_TRUE(diverged);
}

TEST(FleetInterleaver, OmitsIdleMachines)
{
    sim::SeededInterleaver a(3, 4);
    std::vector<uint8_t> has = {1, 0, 1, 0};
    std::vector<unsigned> order = a.schedule(has);
    ASSERT_EQ(order.size(), 2u);
    std::set<unsigned> got(order.begin(), order.end());
    EXPECT_TRUE(got.count(0));
    EXPECT_TRUE(got.count(2));
    EXPECT_TRUE(a.schedule(std::vector<uint8_t>(4, 0)).empty());
}

// ---------------------------------------------------------------------
// Kernel connection table (satellite: no per-accept linear scan)
// ---------------------------------------------------------------------

TEST(ConnTable, HashLookupAndFreeListRecycle)
{
    kern::System sys(fleetSysConfig());
    sys.boot();

    kern::Ino ino = 0;
    sys.kernel().fs().create("/index.html", ino);
    std::vector<uint8_t> body(512, 'x');
    sys.kernel().fs().write(ino, 0, body.data(), body.size());

    const uint64_t kRequests = 24;
    const unsigned kConcurrency = 6;
    apps::AbResult ab;
    sys.runProcess("conn-table", [&](kern::UserApi &api) {
        uint64_t srv = api.fork([&](kern::UserApi &sapi) {
            apps::ThttpdMultiConfig cfg;
            cfg.maxRequests = kRequests;
            return apps::thttpdMulti(sapi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();
        ab = apps::apacheBenchConcurrent(api, "/index.html",
                                         kRequests, kConcurrency);
        int status = 0;
        api.waitpid(srv, status);
        return 0;
    });

    EXPECT_EQ(ab.requests, kRequests);
    EXPECT_EQ(ab.failures, 0u);

    std::map<std::string, uint64_t> st = sys.ctx().stats().all();
    uint64_t inserts = st["kernel.conn_table_inserts"];
    uint64_t erases = st["kernel.conn_table_erases"];
    uint64_t lookups = st["kernel.conn_table_lookups"];
    uint64_t peak = st["kernel.conn_table_peak"];
    EXPECT_EQ(inserts, kRequests);
    EXPECT_EQ(erases, inserts); // every connection retired
    EXPECT_GE(lookups, kRequests); // one O(1) adoption per accept
    EXPECT_GE(peak, 2u);

    // Free-list recycling: the table is empty, every id is back on
    // the free-list, and only `peak` ids were ever minted — far fewer
    // than the number of connections served.
    const kern::ConnTable &ct = sys.kernel().connTable();
    EXPECT_EQ(ct.size(), 0u);
    EXPECT_EQ(ct.freeIds.size(), peak);
    EXPECT_EQ(ct.nextId - 1, peak);
    EXPECT_LT(ct.nextId - 1, inserts);
}

// ---------------------------------------------------------------------
// Fabric: DescRing delivery, probes, failure injection
// ---------------------------------------------------------------------

TEST(Fabric, RingDeliveryAndPing)
{
    Fabric fab(2, fleetSysConfig());
    fab.bootAll();

    std::vector<uint8_t> frame(3000, 0xab); // forces MTU chunking
    double hop = fab.sendToMachine(1, frame);
    EXPECT_GE(hop, 0.0);
    std::vector<uint8_t> got = fab.receiveAtMachine(1);
    EXPECT_EQ(got, frame);
    EXPECT_EQ(fab.framesToMachine(1), 1u);

    double back = fab.sendToLb(1, {1, 2, 3});
    EXPECT_GE(back, 0.0);
    EXPECT_EQ(fab.receiveAtLb(1), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_EQ(fab.framesToLb(1), 1u);

    EXPECT_TRUE(fab.pingMachine(0));
    EXPECT_TRUE(fab.pingMachine(1));

    fab.injectLinkFailure(0);
    EXPECT_FALSE(fab.pingMachine(0));
    EXPECT_LT(fab.sendToMachine(0, frame), 0.0);
    EXPECT_TRUE(fab.pingMachine(1)); // other links unaffected
    fab.clearLinkFailure(0);
    EXPECT_TRUE(fab.pingMachine(0));
}

// ---------------------------------------------------------------------
// L4 load balancer
// ---------------------------------------------------------------------

TEST(LoadBalancerTest, ConsistentHashStableAndBoundedChurn)
{
    LoadBalancer lb(LbPolicy::ConsistentHash, 4, 42);
    const uint64_t kFlows = 400;

    std::vector<int> before(kFlows);
    for (uint64_t f = 0; f < kFlows; f++) {
        before[f] = lb.route(f + 1);
        ASSERT_GE(before[f], 0);
        // Stability: the same key always lands on the same machine.
        EXPECT_EQ(lb.route(f + 1), before[f]);
    }

    lb.eject(2);
    uint64_t moved = 0;
    for (uint64_t f = 0; f < kFlows; f++) {
        int after = lb.route(f + 1);
        ASSERT_GE(after, 0);
        EXPECT_NE(after, 2);
        if (before[f] == 2) {
            EXPECT_NE(after, 2);
        } else {
            // Consistent-hash churn bound: only flows that hashed to
            // the ejected machine move.
            EXPECT_EQ(after, before[f]);
        }
        if (after != before[f])
            moved++;
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, kFlows / 2); // ~1/4 expected, never a reshuffle

    lb.restore(2);
    for (uint64_t f = 0; f < kFlows; f++)
        EXPECT_EQ(lb.route(f + 1), before[f]);
}

TEST(LoadBalancerTest, LeastConnBalancesAndDrains)
{
    LoadBalancer lb(LbPolicy::LeastConn, 3, 42);
    std::vector<uint64_t> open(3, 0);
    for (uint64_t f = 0; f < 99; f++) {
        int m = lb.route(f);
        ASSERT_GE(m, 0);
        lb.connOpened(unsigned(m));
        open[unsigned(m)]++;
    }
    // Perfect balance: every route goes to the emptiest machine.
    EXPECT_EQ(open[0], 33u);
    EXPECT_EQ(open[1], 33u);
    EXPECT_EQ(open[2], 33u);

    lb.eject(1);
    EXPECT_EQ(lb.drain(1), 33u);
    EXPECT_EQ(lb.activeConns(1), 0u);
    EXPECT_EQ(lb.healthyCount(), 2u);
    for (uint64_t f = 0; f < 10; f++)
        EXPECT_NE(lb.route(f), 1);

    lb.eject(0);
    lb.eject(2);
    EXPECT_EQ(lb.route(1), -1); // nobody healthy
}

// ---------------------------------------------------------------------
// Tenant key chains
// ---------------------------------------------------------------------

TEST(TenantKeys, DerivationDistinctPerTenantAndGeneration)
{
    crypto::AesKey master{};
    for (int i = 0; i < 16; i++)
        master[size_t(i)] = uint8_t(i * 7 + 3);
    TenantDirectory dir(master, 8);

    std::set<std::vector<uint8_t>> seen;
    for (unsigned id = 0; id < 8; id++) {
        const Tenant &t = dir.tenant(id);
        EXPECT_EQ(t.keyGeneration, 1u);
        EXPECT_EQ(t.key, dir.deriveKey(id, 1));
        for (uint64_t gen = 1; gen <= 3; gen++) {
            crypto::AesKey k = dir.deriveKey(id, gen);
            seen.insert(
                std::vector<uint8_t>(k.begin(), k.end()));
        }
    }
    // 8 tenants x 3 generations, all pairwise distinct.
    EXPECT_EQ(seen.size(), 24u);

    crypto::AesKey old_key = dir.tenant(3).key;
    dir.migrate(3, 2);
    EXPECT_EQ(dir.tenant(3).primary, 2u);
    EXPECT_EQ(dir.tenant(3).keyGeneration, 2u);
    EXPECT_EQ(dir.tenant(3).migrations, 1u);
    EXPECT_NE(dir.tenant(3).key, old_key);
    EXPECT_EQ(dir.tenant(3).key, dir.deriveKey(3, 2));
    // Determinism: re-derivation of the dead generation still matches
    // what it was (the chain is a pure function of the master key).
    EXPECT_EQ(dir.deriveKey(3, 1), old_key);
}

// ---------------------------------------------------------------------
// FleetEquivalenceSweep: same seed => bit-identical fleet runs
// ---------------------------------------------------------------------

TEST(FleetEquivalenceSweep, SameSeedBitIdenticalAcrossScales)
{
    for (unsigned machines : {2u, 4u}) {
        for (unsigned vcpus : {1u, 2u}) {
            SCOPED_TRACE("machines=" + std::to_string(machines) +
                         " vcpus=" + std::to_string(vcpus));
            FleetConfig cfg = smallFleet(machines, vcpus);

            Fleet f1(cfg);
            FleetResult r1 = f1.run();
            Fleet f2(cfg);
            FleetResult r2 = f2.run();

            // The run did real work.
            EXPECT_GT(r1.served, 0u);
            EXPECT_EQ(r1.served + r1.failures + r1.dropped,
                      cfg.requests);
            EXPECT_EQ(r1.tenantFailures, 0u);

            // Bit-identical request and latency streams...
            EXPECT_EQ(r1.requestLog, r2.requestLog);
            EXPECT_EQ(r1.latencyUs, r2.latencyUs);
            // ...aggregates...
            EXPECT_EQ(r1.served, r2.served);
            EXPECT_EQ(r1.bytes, r2.bytes);
            EXPECT_EQ(r1.fleetTimeUs, r2.fleetTimeUs);
            EXPECT_EQ(r1.epochs, r2.epochs);
            EXPECT_EQ(r1.machineServed, r2.machineServed);
            // ...and full per-machine stat rollups.
            ASSERT_EQ(r1.machineStats.size(), machines);
            EXPECT_EQ(r1.machineStats, r2.machineStats);
        }
    }
}

TEST(FleetEquivalenceSweep, DifferentSeedDifferentStream)
{
    FleetConfig a = smallFleet(2, 1, 42);
    FleetConfig b = smallFleet(2, 1, 43);
    FleetResult ra = Fleet(a).run();
    FleetResult rb = Fleet(b).run();
    EXPECT_NE(ra.requestLog, rb.requestLog);
}

// ---------------------------------------------------------------------
// LB failover: drain, key-chain advance, zero disclosure
// ---------------------------------------------------------------------

namespace
{

/** Does @p needle appear anywhere in the machine's disk or RAM? */
bool
machineHoldsPattern(kern::System &sys,
                    const std::vector<uint8_t> &needle)
{
    hw::Disk &disk = sys.disk();
    for (uint64_t b = 0; b < disk.numBlocks(); b++) {
        const uint8_t *blk = disk.rawBlock(b);
        if (memmem(blk, hw::Disk::blockSize, needle.data(),
                   needle.size()))
            return true;
    }
    hw::PhysMem &mem = sys.mem();
    for (uint64_t f = 0; f < mem.numFrames(); f++) {
        if (memmem(mem.framePtr(f), hw::pageSize, needle.data(),
                   needle.size()))
            return true;
    }
    return false;
}

/** First @p n bytes of the plaintext a tenant writes into ghost page
 *  @p page under @p key. */
std::vector<uint8_t>
ghostNeedle(const crypto::AesKey &key, uint64_t page, size_t n)
{
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; i++)
        v[i] = ghostPatternByte(key, page, i);
    return v;
}

} // namespace

TEST(FleetFailover, EjectDrainsMigratesAndDisclosesNothing)
{
    FleetConfig cfg;
    cfg.machines = 3;
    cfg.tenants = 6;
    cfg.system = fleetSysConfig(1);
    cfg.requests = 48;
    cfg.openLoopRps = 5000.0;
    cfg.fileBytes = 1024;
    cfg.knobs.ghostPagesPerTenant = 4;
    cfg.knobs.concurrency = 8;

    const unsigned kVictim = 1;
    Fleet fleet(cfg);
    // Original gen-1 keys: what the victim held before the failure.
    std::vector<crypto::AesKey> gen1;
    for (unsigned t = 0; t < cfg.tenants; t++)
        gen1.push_back(fleet.tenants().deriveKey(t, 1));
    std::vector<unsigned> orig_primary;
    for (const Tenant &t : fleet.tenants().all())
        orig_primary.push_back(t.primary);

    fleet.scheduleFailure(kVictim, 2);
    FleetResult res = fleet.run();

    // The victim served before the failure, then got ejected.
    EXPECT_GT(res.machineServed[kVictim], 0u);
    EXPECT_FALSE(fleet.lb().healthy(kVictim));
    EXPECT_EQ(fleet.lb().activeConns(kVictim), 0u);

    // No lost requests: every request got an outcome, the survivors
    // absorbed the work, and the ghost tenants never failed.
    EXPECT_EQ(res.served + res.failures + res.dropped, cfg.requests);
    EXPECT_EQ(res.dropped, 0u);
    EXPECT_EQ(res.tenantFailures, 0u);
    EXPECT_EQ(res.requestLog.size(), res.served + res.failures);

    // Every tenant whose primary was the victim migrated: key chain
    // advanced, new primary healthy, survivors re-provisioned at the
    // new generation.
    unsigned migrated = 0;
    for (const Tenant &t : fleet.tenants().all()) {
        if (orig_primary[t.id] != kVictim)
            continue;
        migrated++;
        EXPECT_NE(t.primary, kVictim);
        EXPECT_GE(t.keyGeneration, 2u);
        EXPECT_GE(t.migrations, 1u);
        EXPECT_NE(t.key, gen1[t.id]);
        for (unsigned m = 0; m < cfg.machines; m++) {
            if (!fleet.lb().healthy(m))
                continue;
            EXPECT_EQ(
                fleet.fabric().machine(m).provisioned().at(t.id),
                t.keyGeneration);
        }
    }
    EXPECT_GT(migrated, 0u);

    // Zero-disclosure scan: neither the plaintext any tenant wrote
    // under its original key (scrubbed on exit, sealed on swap) nor
    // plaintext under the post-failover keys (never provisioned
    // there) appears anywhere in the victim's RAM or disk.
    kern::System &victim = fleet.fabric().machine(kVictim).sys();
    for (unsigned t = 0; t < cfg.tenants; t++) {
        for (uint64_t page = 0;
             page < cfg.knobs.ghostPagesPerTenant; page++) {
            EXPECT_FALSE(machineHoldsPattern(
                victim, ghostNeedle(gen1[t], page, 48)))
                << "gen-1 plaintext of tenant " << t << " page "
                << page << " leaked on the failed machine";
            EXPECT_FALSE(machineHoldsPattern(
                victim,
                ghostNeedle(fleet.tenants().tenant(t).key, page, 48)))
                << "current-gen plaintext of tenant " << t
                << " visible on the failed machine";
        }
    }
}
