/**
 * @file
 * BigNum arithmetic and RSA tests, including parameterized property
 * sweeps over random operands.
 */

#include <gtest/gtest.h>

#include "crypto/bignum.hh"
#include "crypto/drbg.hh"
#include "crypto/rsa.hh"

using namespace vg::crypto;

TEST(BigNum, ConstructAndCompare)
{
    BigNum zero;
    BigNum a(42);
    BigNum b(0x100000000ull);
    EXPECT_TRUE(zero.isZero());
    EXPECT_FALSE(a.isZero());
    EXPECT_LT(zero, a);
    EXPECT_LT(a, b);
    EXPECT_EQ(b.bitLength(), 33u);
    EXPECT_EQ(a, BigNum(42));
}

TEST(BigNum, HexRoundtrip)
{
    BigNum n = BigNum::fromHex("deadbeefcafebabe0123456789abcdef");
    EXPECT_EQ(n.toHex(), "deadbeefcafebabe0123456789abcdef");
    EXPECT_EQ(BigNum(0).toHex(), "0");
    EXPECT_EQ(BigNum::fromHex("0000ff").toHex(), "ff");
}

TEST(BigNum, BytesRoundtrip)
{
    std::vector<uint8_t> bytes = {0x01, 0x02, 0x03, 0xff};
    BigNum n = BigNum::fromBytes(bytes);
    EXPECT_EQ(n.toBytes(), bytes);
    EXPECT_EQ(n.toBytesPadded(6),
              (std::vector<uint8_t>{0, 0, 0x01, 0x02, 0x03, 0xff}));
}

TEST(BigNum, AddSub)
{
    BigNum a = BigNum::fromHex("ffffffffffffffff");
    BigNum b(1);
    EXPECT_EQ((a + b).toHex(), "10000000000000000");
    EXPECT_EQ((a + b - b), a);
    EXPECT_EQ((a - a).toHex(), "0");
}

TEST(BigNum, Mul)
{
    BigNum a = BigNum::fromHex("ffffffff");
    EXPECT_EQ((a * a).toHex(), "fffffffe00000001");
    EXPECT_EQ((a * BigNum(0)).toHex(), "0");
    EXPECT_EQ((BigNum(12345) * BigNum(6789)), BigNum(83810205));
}

TEST(BigNum, Shifts)
{
    BigNum a(1);
    EXPECT_EQ((a << 100).bitLength(), 101u);
    EXPECT_EQ(((a << 100) >> 100), a);
    EXPECT_EQ((BigNum(0xff) >> 4), BigNum(0xf));
    EXPECT_TRUE((a >> 1).isZero());
}

TEST(BigNum, DivMod)
{
    BigNum a(1000), b(7);
    BigNum q, r;
    a.divmod(b, q, r);
    EXPECT_EQ(q, BigNum(142));
    EXPECT_EQ(r, BigNum(6));
    EXPECT_EQ(BigNum(5) / BigNum(10), BigNum(0));
    EXPECT_EQ(BigNum(5) % BigNum(10), BigNum(5));
}

TEST(BigNum, ModExpKnown)
{
    EXPECT_EQ(BigNum(4).modExp(BigNum(13), BigNum(497)), BigNum(445));
    EXPECT_EQ(BigNum(2).modExp(BigNum(10), BigNum(1000)), BigNum(24));
    EXPECT_EQ(BigNum(7).modExp(BigNum(0), BigNum(13)), BigNum(1));
}

TEST(BigNum, ModInverse)
{
    bool ok = false;
    BigNum inv = BigNum(3).modInverse(BigNum(11), ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(inv, BigNum(4));

    BigNum no_inv = BigNum(4).modInverse(BigNum(8), ok);
    EXPECT_FALSE(ok);
    (void)no_inv;
}

TEST(BigNum, Gcd)
{
    EXPECT_EQ(BigNum::gcd(BigNum(48), BigNum(36)), BigNum(12));
    EXPECT_EQ(BigNum::gcd(BigNum(17), BigNum(5)), BigNum(1));
    EXPECT_EQ(BigNum::gcd(BigNum(0), BigNum(7)), BigNum(7));
}

TEST(BigNum, PrimalityKnownValues)
{
    CtrDrbg rng({'p'});
    EXPECT_TRUE(BigNum(2).isProbablePrime(rng));
    EXPECT_TRUE(BigNum(3).isProbablePrime(rng));
    EXPECT_TRUE(BigNum(65537).isProbablePrime(rng));
    EXPECT_TRUE(BigNum::fromHex("fffffffb").isProbablePrime(rng));
    EXPECT_FALSE(BigNum(1).isProbablePrime(rng));
    EXPECT_FALSE(BigNum(561).isProbablePrime(rng)); // Carmichael
    EXPECT_FALSE(BigNum(65536).isProbablePrime(rng));
}

/**
 * Property sweep: algebraic identities over random operands of varying
 * widths.
 */
class BigNumProperty : public ::testing::TestWithParam<size_t>
{};

TEST_P(BigNumProperty, DivModReconstructs)
{
    size_t bits = GetParam();
    CtrDrbg rng({'d', uint8_t(bits)});
    for (int i = 0; i < 20; i++) {
        BigNum a = BigNum::randomBits(rng, bits);
        BigNum b = BigNum::randomBits(rng, bits / 2 + 1);
        BigNum q, r;
        a.divmod(b, q, r);
        EXPECT_EQ(q * b + r, a);
        EXPECT_LT(r, b);
    }
}

TEST_P(BigNumProperty, MulDistributesOverAdd)
{
    size_t bits = GetParam();
    CtrDrbg rng({'m', uint8_t(bits)});
    for (int i = 0; i < 20; i++) {
        BigNum a = BigNum::randomBits(rng, bits);
        BigNum b = BigNum::randomBits(rng, bits);
        BigNum c = BigNum::randomBits(rng, bits);
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST_P(BigNumProperty, ShiftIsMulByPowerOfTwo)
{
    size_t bits = GetParam();
    CtrDrbg rng({'s', uint8_t(bits)});
    for (int i = 0; i < 10; i++) {
        BigNum a = BigNum::randomBits(rng, bits);
        size_t k = rng.nextBounded(60) + 1;
        BigNum pow2(1);
        pow2 = pow2 << k;
        EXPECT_EQ(a << k, a * pow2);
    }
}

TEST_P(BigNumProperty, ModExpMatchesNaive)
{
    size_t bits = GetParam();
    CtrDrbg rng({'e', uint8_t(bits)});
    for (int i = 0; i < 5; i++) {
        BigNum base = BigNum::randomBits(rng, bits);
        BigNum mod = BigNum::randomBits(rng, bits);
        if (mod.isZero())
            continue;
        uint64_t exp = rng.nextBounded(20);
        BigNum naive(1);
        naive = naive % mod;
        for (uint64_t j = 0; j < exp; j++)
            naive = (naive * base) % mod;
        EXPECT_EQ(base.modExp(BigNum(exp), mod), naive);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigNumProperty,
                         ::testing::Values(16, 48, 96, 160, 256));

// --------------------------------------------------------------------
// RSA
// --------------------------------------------------------------------

namespace
{

/** Shared small test key (generation dominates test time). */
const RsaPrivateKey &
testKey()
{
    static RsaPrivateKey key = [] {
        CtrDrbg rng({'k', 'e', 'y'});
        return rsaGenerate(rng, 384);
    }();
    return key;
}

} // namespace

TEST(Rsa, KeyStructure)
{
    const RsaPrivateKey &key = testKey();
    EXPECT_EQ(key.n, key.p * key.q);
    EXPECT_GE(key.n.bitLength(), 380u);
    // d*e == 1 mod (p-1)(q-1)
    BigNum phi = (key.p - BigNum(1)) * (key.q - BigNum(1));
    EXPECT_EQ((key.d * key.e) % phi, BigNum(1));
}

TEST(Rsa, EncryptDecryptRoundtrip)
{
    const RsaPrivateKey &key = testKey();
    CtrDrbg rng({'r'});
    std::vector<uint8_t> msg = {'s', 'e', 'c', 'r', 'e', 't'};
    auto cipher = rsaEncrypt(key.publicKey(), rng, msg);
    EXPECT_EQ(cipher.size(), key.publicKey().modulusBytes());
    bool ok = false;
    EXPECT_EQ(rsaDecrypt(key, cipher, ok), msg);
    EXPECT_TRUE(ok);
}

TEST(Rsa, EncryptionIsRandomized)
{
    const RsaPrivateKey &key = testKey();
    CtrDrbg rng({'r'});
    std::vector<uint8_t> msg = {1, 2, 3};
    auto c1 = rsaEncrypt(key.publicKey(), rng, msg);
    auto c2 = rsaEncrypt(key.publicKey(), rng, msg);
    EXPECT_NE(c1, c2);
}

TEST(Rsa, DecryptRejectsTampered)
{
    const RsaPrivateKey &key = testKey();
    CtrDrbg rng({'r'});
    auto cipher = rsaEncrypt(key.publicKey(), rng, {1, 2, 3, 4});
    cipher[cipher.size() / 2] ^= 0x55;
    bool ok = true;
    rsaDecrypt(key, cipher, ok);
    // Tampering either breaks padding (ok=false) or yields different
    // bytes; padding failure is the expected path.
    if (ok) {
        auto got = rsaDecrypt(key, cipher, ok);
        EXPECT_NE(got, (std::vector<uint8_t>{1, 2, 3, 4}));
    }
}

TEST(Rsa, SignVerify)
{
    const RsaPrivateKey &key = testKey();
    std::vector<uint8_t> msg(200, 0x3c);
    auto sig = rsaSign(key, msg);
    EXPECT_TRUE(rsaVerify(key.publicKey(), msg, sig));

    msg[0] ^= 1;
    EXPECT_FALSE(rsaVerify(key.publicKey(), msg, sig));
    msg[0] ^= 1;
    sig[10] ^= 1;
    EXPECT_FALSE(rsaVerify(key.publicKey(), msg, sig));
}

TEST(Rsa, VerifyRejectsWrongKey)
{
    const RsaPrivateKey &key = testKey();
    CtrDrbg rng({'k', '2'});
    RsaPrivateKey other = rsaGenerate(rng, 384);
    std::vector<uint8_t> msg = {'m'};
    auto sig = rsaSign(key, msg);
    EXPECT_FALSE(rsaVerify(other.publicKey(), msg, sig));
}

TEST(Rsa, SerializeRoundtrip)
{
    const RsaPrivateKey &key = testKey();
    bool ok = false;
    RsaPrivateKey back =
        RsaPrivateKey::deserialize(key.serialize(), ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(back.n, key.n);
    EXPECT_EQ(back.d, key.d);

    RsaPublicKey pub =
        RsaPublicKey::deserialize(key.publicKey().serialize(), ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(pub.n, key.n);
    EXPECT_EQ(pub.e, key.e);
}

TEST(Rsa, DeserializeRejectsTruncated)
{
    const RsaPrivateKey &key = testKey();
    auto bytes = key.serialize();
    bytes.resize(bytes.size() / 2);
    bool ok = true;
    RsaPrivateKey::deserialize(bytes, ok);
    EXPECT_FALSE(ok);
}
