/**
 * @file
 * VGFS and buffer-cache tests (directly over the simulated disk).
 */

#include <gtest/gtest.h>

#include "kernel/fs.hh"

using namespace vg;
using namespace vg::kern;

namespace
{

struct Rig
{
    sim::SimContext ctx;
    hw::PhysMem mem{16};
    hw::Iommu iommu{mem, ctx};
    hw::Disk disk{4096, iommu, ctx}; // 16 MB
    BufferCache cache{disk, ctx, 512};
    Fs fs{cache, ctx, 4096};

    Rig() { fs.mkfs(); }
};

} // namespace

TEST(Bcache, HitsAndMisses)
{
    sim::SimContext ctx;
    hw::PhysMem mem(16);
    hw::Iommu iommu(mem, ctx);
    hw::Disk disk(128, iommu, ctx);
    BufferCache cache(disk, ctx, 4);

    cache.get(1);
    cache.get(1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // Evict with a small cache.
    cache.get(2);
    cache.get(3);
    cache.get(4);
    cache.get(5);
    cache.get(1); // evicted by now
    EXPECT_GE(cache.misses(), 5u);
}

TEST(Bcache, WritebackPersists)
{
    sim::SimContext ctx;
    hw::PhysMem mem(16);
    hw::Iommu iommu(mem, ctx);
    hw::Disk disk(128, iommu, ctx);
    {
        BufferCache cache(disk, ctx, 4);
        Buf *b = cache.get(7);
        b->data[0] = 0x99;
        cache.markDirty(b);
        cache.sync();
    }
    EXPECT_EQ(disk.rawBlock(7)[0], 0x99);
}

TEST(Fs, CreateWriteReadRoundtrip)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/hello.txt", ino), FsStatus::Ok);

    std::string msg = "hello virtual ghost";
    ASSERT_EQ(rig.fs.write(ino, 0, msg.data(), msg.size()),
              int64_t(msg.size()));

    char buf[64] = {};
    ASSERT_EQ(rig.fs.read(ino, 0, buf, sizeof(buf)),
              int64_t(msg.size()));
    EXPECT_EQ(std::string(buf, msg.size()), msg);

    FileStat st;
    ASSERT_EQ(rig.fs.stat(ino, st), FsStatus::Ok);
    EXPECT_EQ(st.size, msg.size());
    EXPECT_EQ(st.type, FileType::Regular);
}

TEST(Fs, LookupAndDuplicateCreate)
{
    Rig rig;
    Ino a = 0, b = 0;
    ASSERT_EQ(rig.fs.create("/f", a), FsStatus::Ok);
    EXPECT_EQ(rig.fs.create("/f", b), FsStatus::Exists);
    EXPECT_EQ(rig.fs.lookup("/f", b), FsStatus::Ok);
    EXPECT_EQ(a, b);
    EXPECT_EQ(rig.fs.lookup("/missing", b), FsStatus::NotFound);
}

TEST(Fs, DirectoriesNestAndList)
{
    Rig rig;
    Ino d = 0, f = 0;
    ASSERT_EQ(rig.fs.mkdir("/usr", d), FsStatus::Ok);
    ASSERT_EQ(rig.fs.mkdir("/usr/local", d), FsStatus::Ok);
    ASSERT_EQ(rig.fs.create("/usr/local/a.txt", f), FsStatus::Ok);
    ASSERT_EQ(rig.fs.create("/usr/local/b.txt", f), FsStatus::Ok);

    Ino dir = 0;
    ASSERT_EQ(rig.fs.lookup("/usr/local", dir), FsStatus::Ok);
    std::vector<std::string> names;
    ASSERT_EQ(rig.fs.readdir(dir, names), FsStatus::Ok);
    EXPECT_EQ(names.size(), 2u);

    // Lookup through components.
    Ino again = 0;
    EXPECT_EQ(rig.fs.lookup("/usr/local/a.txt", again), FsStatus::Ok);
}

TEST(Fs, UnlinkFreesSpaceAndName)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/tmp.bin", ino), FsStatus::Ok);
    // Baseline after create: the directory's entry block stays
    // allocated; unlink only releases the file's data blocks.
    uint64_t before = rig.fs.freeDataBlocks();
    std::vector<uint8_t> data(40960, 0xaa);
    ASSERT_EQ(rig.fs.write(ino, 0, data.data(), data.size()),
              int64_t(data.size()));
    EXPECT_LT(rig.fs.freeDataBlocks(), before);

    ASSERT_EQ(rig.fs.unlink("/tmp.bin"), FsStatus::Ok);
    EXPECT_EQ(rig.fs.freeDataBlocks(), before);
    Ino gone = 0;
    EXPECT_EQ(rig.fs.lookup("/tmp.bin", gone), FsStatus::NotFound);
}

TEST(Fs, UnlinkNonEmptyDirRefused)
{
    Rig rig;
    Ino d = 0, f = 0;
    ASSERT_EQ(rig.fs.mkdir("/d", d), FsStatus::Ok);
    ASSERT_EQ(rig.fs.create("/d/f", f), FsStatus::Ok);
    EXPECT_EQ(rig.fs.unlink("/d"), FsStatus::NotEmpty);
    ASSERT_EQ(rig.fs.unlink("/d/f"), FsStatus::Ok);
    EXPECT_EQ(rig.fs.unlink("/d"), FsStatus::Ok);
}

TEST(Fs, LargeFileThroughIndirectBlocks)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/big", ino), FsStatus::Ok);

    // 1 MB crosses from direct (40 KB) into the indirect range.
    std::vector<uint8_t> data(1 << 20);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = uint8_t(i * 131 + 7);
    ASSERT_EQ(rig.fs.write(ino, 0, data.data(), data.size()),
              int64_t(data.size()));

    std::vector<uint8_t> back(data.size());
    ASSERT_EQ(rig.fs.read(ino, 0, back.data(), back.size()),
              int64_t(back.size()));
    EXPECT_EQ(back, data);
}

TEST(Fs, SparseWriteAndHoleRead)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/sparse", ino), FsStatus::Ok);
    uint8_t byte = 0x42;
    ASSERT_EQ(rig.fs.write(ino, 100000, &byte, 1), 1);

    uint8_t hole[16] = {1, 1, 1};
    ASSERT_EQ(rig.fs.read(ino, 50000, hole, sizeof(hole)), 16);
    for (uint8_t b : hole)
        EXPECT_EQ(b, 0);
}

TEST(Fs, OffsetReadsAndShortReads)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/f", ino), FsStatus::Ok);
    std::string msg = "0123456789";
    rig.fs.write(ino, 0, msg.data(), msg.size());

    char buf[4] = {};
    EXPECT_EQ(rig.fs.read(ino, 8, buf, 4), 2); // short read at EOF
    EXPECT_EQ(buf[0], '8');
    EXPECT_EQ(rig.fs.read(ino, 100, buf, 4), 0);
}

TEST(Fs, TruncateReleasesBlocks)
{
    Rig rig;
    Ino ino = 0;
    ASSERT_EQ(rig.fs.create("/t", ino), FsStatus::Ok);
    uint64_t before = rig.fs.freeDataBlocks();
    std::vector<uint8_t> data(100000, 1);
    rig.fs.write(ino, 0, data.data(), data.size());
    ASSERT_EQ(rig.fs.truncate(ino), FsStatus::Ok);
    EXPECT_EQ(rig.fs.freeDataBlocks(), before);
    FileStat st;
    rig.fs.stat(ino, st);
    EXPECT_EQ(st.size, 0u);
}

TEST(Fs, MountSeesPersistedData)
{
    sim::SimContext ctx;
    hw::PhysMem mem(16);
    hw::Iommu iommu(mem, ctx);
    hw::Disk disk(4096, iommu, ctx);
    {
        BufferCache cache(disk, ctx, 512);
        Fs fs(cache, ctx, 4096);
        fs.mkfs();
        Ino ino = 0;
        ASSERT_EQ(fs.create("/persist", ino), FsStatus::Ok);
        fs.write(ino, 0, "data", 4);
        fs.sync();
    }
    {
        BufferCache cache(disk, ctx, 512);
        Fs fs(cache, ctx, 4096);
        ASSERT_TRUE(fs.mount());
        Ino ino = 0;
        ASSERT_EQ(fs.lookup("/persist", ino), FsStatus::Ok);
        char buf[8] = {};
        EXPECT_EQ(fs.read(ino, 0, buf, 8), 4);
        EXPECT_EQ(std::string(buf, 4), "data");
    }
}

TEST(Fs, ManyFilesInOneDirectory)
{
    Rig rig;
    for (int i = 0; i < 200; i++) {
        Ino ino = 0;
        ASSERT_EQ(rig.fs.create("/file" + std::to_string(i), ino),
                  FsStatus::Ok)
            << i;
    }
    Ino dir = 0;
    rig.fs.lookup("/", dir);
    std::vector<std::string> names;
    rig.fs.readdir(dir, names);
    EXPECT_EQ(names.size(), 200u);

    // Delete half, names stay consistent.
    for (int i = 0; i < 100; i++)
        ASSERT_EQ(rig.fs.unlink("/file" + std::to_string(i)),
                  FsStatus::Ok);
    names.clear();
    rig.fs.readdir(dir, names);
    EXPECT_EQ(names.size(), 100u);
}
