/**
 * @file
 * Crypto substrate tests: SHA-256, AES-128, HMAC, DRBG, sealing.
 * Known-answer vectors come from FIPS 197, FIPS 180-4 and RFC 4231.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.hh"
#include "crypto/drbg.hh"
#include "crypto/hmac.hh"
#include "crypto/sealed.hh"
#include "crypto/sha256.hh"

using namespace vg::crypto;

namespace
{

std::vector<uint8_t>
fromHexStr(const std::string &hex)
{
    std::vector<uint8_t> out;
    for (size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(
            uint8_t(std::stoul(hex.substr(i, 2), nullptr, 16)));
    return out;
}

AesKey
keyFromHex(const std::string &hex)
{
    AesKey k{};
    auto v = fromHexStr(hex);
    std::copy(v.begin(), v.end(), k.begin());
    return k;
}

} // namespace

// --------------------------------------------------------------------
// SHA-256
// --------------------------------------------------------------------

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(toHex(Sha256::hash("", 0)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(toHex(Sha256::hash("abc", 3)),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    const char *msg = "abcdbcdecdefdefgefghfghighijhijkijkljklm"
                      "klmnlmnomnopnopq";
    EXPECT_EQ(toHex(Sha256::hash(msg, std::strlen(msg))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; i++)
        h.update(chunk.data(), chunk.size());
    EXPECT_EQ(toHex(h.final()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::string msg = "The quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : msg)
        h.update(&c, 1);
    EXPECT_EQ(h.final(), Sha256::hash(msg.data(), msg.size()));
}

TEST(Sha256, ResetAfterFinal)
{
    Sha256 h;
    h.update("abc", 3);
    h.final();
    h.update("abc", 3);
    EXPECT_EQ(toHex(h.final()),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

// --------------------------------------------------------------------
// AES-128
// --------------------------------------------------------------------

TEST(Aes, Fips197Vector)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    auto block = fromHexStr("00112233445566778899aabbccddeeff");
    aes.encryptBlock(block.data());
    EXPECT_EQ(block, fromHexStr("69c4e0d86a7b0430d8cdb78070b4c55a"));
    aes.decryptBlock(block.data());
    EXPECT_EQ(block, fromHexStr("00112233445566778899aabbccddeeff"));
}

TEST(Aes, NistEcbVector)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    auto block = fromHexStr("6bc1bee22e409f96e93d7e117393172a");
    aes.encryptBlock(block.data());
    EXPECT_EQ(block, fromHexStr("3ad77bb40d7a3660a89ecaf32466ef97"));
}

TEST(Aes, CbcRoundtrip)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock iv{};
    for (int i = 0; i < 16; i++)
        iv[size_t(i)] = uint8_t(i);

    for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
        std::vector<uint8_t> plain(len);
        for (size_t i = 0; i < len; i++)
            plain[i] = uint8_t(i * 7 + 3);
        auto cipher = aes.cbcEncrypt(plain, iv);
        EXPECT_EQ(cipher.size() % 16, 0u);
        EXPECT_GE(cipher.size(), plain.size() + 1);
        bool ok = false;
        auto back = aes.cbcDecrypt(cipher, iv, ok);
        EXPECT_TRUE(ok) << "len=" << len;
        EXPECT_EQ(back, plain);
    }
}

TEST(Aes, CbcDetectsBadPadding)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock iv{};
    std::vector<uint8_t> plain(32, 0x5a);
    auto cipher = aes.cbcEncrypt(plain, iv);
    cipher.back() ^= 0xff;
    bool ok = true;
    aes.cbcDecrypt(cipher, iv, ok);
    // Either padding fails or the plaintext differs; padding failure is
    // the overwhelmingly likely result.
    if (ok) {
        auto got = aes.cbcDecrypt(cipher, iv, ok);
        EXPECT_NE(got, plain);
    }
}

TEST(Aes, CbcRejectsTruncated)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    AesBlock iv{};
    bool ok = true;
    aes.cbcDecrypt(std::vector<uint8_t>(15, 0), iv, ok);
    EXPECT_FALSE(ok);
}

TEST(Aes, CtrRoundtripAndSymmetry)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    AesBlock nonce{};
    nonce[0] = 0xaa;

    std::vector<uint8_t> plain(1000);
    for (size_t i = 0; i < plain.size(); i++)
        plain[i] = uint8_t(i);
    auto cipher = aes.ctrCrypt(plain, nonce);
    EXPECT_NE(cipher, plain);
    EXPECT_EQ(aes.ctrCrypt(cipher, nonce), plain);
}

TEST(Aes, CtrCounterAdvancesAcrossBlocks)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    AesBlock nonce{};
    std::vector<uint8_t> zeros(64, 0);
    auto ks = aes.ctrCrypt(zeros, nonce);
    // Keystream blocks must differ.
    EXPECT_NE(std::memcmp(ks.data(), ks.data() + 16, 16), 0);
    EXPECT_NE(std::memcmp(ks.data() + 16, ks.data() + 32, 16), 0);
}

// --------------------------------------------------------------------
// HMAC (RFC 4231)
// --------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1)
{
    std::vector<uint8_t> key(20, 0x0b);
    auto mac = hmacSha256(key, "Hi There", 8);
    EXPECT_EQ(toHex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    std::vector<uint8_t> key = {'J', 'e', 'f', 'e'};
    const char *data = "what do ya want for nothing?";
    auto mac = hmacSha256(key, data, std::strlen(data));
    EXPECT_EQ(toHex(mac),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed)
{
    std::vector<uint8_t> key(131, 0xaa);
    const char *data = "Test Using Larger Than Block-Size Key - "
                       "Hash Key First";
    auto mac = hmacSha256(key, data, std::strlen(data));
    EXPECT_EQ(toHex(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualConstantTime)
{
    Digest a{}, b{};
    EXPECT_TRUE(digestEqual(a, b));
    b[31] = 1;
    EXPECT_FALSE(digestEqual(a, b));
}

// --------------------------------------------------------------------
// DRBG
// --------------------------------------------------------------------

TEST(Drbg, Deterministic)
{
    CtrDrbg a({'s', 'e', 'e', 'd'});
    CtrDrbg b({'s', 'e', 'e', 'd'});
    EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(Drbg, DifferentSeedsDiverge)
{
    CtrDrbg a({'s', 'e', 'e', 'd'});
    CtrDrbg b({'S', 'E', 'E', 'D'});
    EXPECT_NE(a.generate(64), b.generate(64));
}

TEST(Drbg, BoundedValues)
{
    CtrDrbg rng({'x'});
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Drbg, ReseedChangesStream)
{
    CtrDrbg a({'s'});
    CtrDrbg b({'s'});
    b.reseed({'m', 'o', 'r', 'e'});
    EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, OutputLooksUniform)
{
    CtrDrbg rng({'u'});
    auto bytes = rng.generate(1 << 16);
    size_t ones = 0;
    for (uint8_t b : bytes)
        ones += size_t(__builtin_popcount(b));
    double frac = double(ones) / (8.0 * double(bytes.size()));
    EXPECT_NEAR(frac, 0.5, 0.01);
}

// --------------------------------------------------------------------
// Sealed blobs
// --------------------------------------------------------------------

TEST(Sealed, Roundtrip)
{
    AesKey key = keyFromHex("00112233445566778899aabbccddeeff");
    CtrDrbg rng({'r'});
    std::vector<uint8_t> plain = {1, 2, 3, 4, 5};
    SealedBlob blob = seal(key, rng, plain);
    bool ok = false;
    EXPECT_EQ(unseal(key, blob, ok), plain);
    EXPECT_TRUE(ok);
}

TEST(Sealed, DetectsCiphertextTampering)
{
    AesKey key = keyFromHex("00112233445566778899aabbccddeeff");
    CtrDrbg rng({'r'});
    SealedBlob blob = seal(key, rng, std::vector<uint8_t>(100, 7));
    blob.ciphertext[50] ^= 1;
    bool ok = true;
    unseal(key, blob, ok);
    EXPECT_FALSE(ok);
}

TEST(Sealed, DetectsNonceTampering)
{
    AesKey key = keyFromHex("00112233445566778899aabbccddeeff");
    CtrDrbg rng({'r'});
    SealedBlob blob = seal(key, rng, std::vector<uint8_t>(16, 9));
    blob.nonce[0] ^= 1;
    bool ok = true;
    unseal(key, blob, ok);
    EXPECT_FALSE(ok);
}

TEST(Sealed, AadBindsContext)
{
    // A page sealed for one virtual address must not verify for
    // another (anti-relocation protection for ghost swap).
    AesKey key = keyFromHex("00112233445566778899aabbccddeeff");
    CtrDrbg rng({'r'});
    std::vector<uint8_t> aad1 = {0x10};
    std::vector<uint8_t> aad2 = {0x20};
    SealedBlob blob = seal(key, rng, std::vector<uint8_t>(8, 1), aad1);
    bool ok = true;
    unseal(key, blob, ok, aad2);
    EXPECT_FALSE(ok);
    unseal(key, blob, ok, aad1);
    EXPECT_TRUE(ok);
}

TEST(Sealed, WrongKeyFails)
{
    AesKey key1 = keyFromHex("00112233445566778899aabbccddeeff");
    AesKey key2 = keyFromHex("ffeeddccbbaa99887766554433221100");
    CtrDrbg rng({'r'});
    SealedBlob blob = seal(key1, rng, std::vector<uint8_t>(8, 1));
    bool ok = true;
    unseal(key2, blob, ok);
    EXPECT_FALSE(ok);
}

TEST(Sealed, SerializeRoundtrip)
{
    AesKey key = keyFromHex("00112233445566778899aabbccddeeff");
    CtrDrbg rng({'r'});
    std::vector<uint8_t> plain = {9, 8, 7};
    SealedBlob blob = seal(key, rng, plain);
    bool ok = false;
    SealedBlob back = SealedBlob::deserialize(blob.serialize(), ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(unseal(key, back, ok), plain);
    EXPECT_TRUE(ok);
}

// --------------------------------------------------------------------
// S-box construction (the xtime/exponentiation build)
// --------------------------------------------------------------------

TEST(AesSbox, KnownEntries)
{
    uint8_t sbox[256], inv_sbox[256];
    detail::buildAesSboxes(sbox, inv_sbox);
    // FIPS 197 Figure 7 spot checks.
    EXPECT_EQ(sbox[0x00], 0x63);
    EXPECT_EQ(sbox[0x01], 0x7c);
    EXPECT_EQ(sbox[0x53], 0xed);
    EXPECT_EQ(sbox[0xff], 0x16);
    EXPECT_EQ(inv_sbox[0x63], 0x00);
    EXPECT_EQ(inv_sbox[0xed], 0x53);
}

TEST(AesSbox, InverseIsInverse)
{
    uint8_t sbox[256], inv_sbox[256];
    detail::buildAesSboxes(sbox, inv_sbox);
    for (int i = 0; i < 256; i++) {
        EXPECT_EQ(inv_sbox[sbox[i]], i);
        EXPECT_EQ(sbox[inv_sbox[i]], i);
    }
}

TEST(AesSbox, IsAPermutation)
{
    uint8_t sbox[256], inv_sbox[256];
    detail::buildAesSboxes(sbox, inv_sbox);
    bool seen[256] = {false};
    for (int i = 0; i < 256; i++)
        seen[sbox[i]] = true;
    for (int i = 0; i < 256; i++)
        EXPECT_TRUE(seen[i]) << "missing sbox output " << i;
}

// --------------------------------------------------------------------
// Known-answer vectors against BOTH the fast and reference paths.
// The param is the `fast` flag handed to each primitive.
// --------------------------------------------------------------------

class BothPaths : public ::testing::TestWithParam<bool>
{
};

TEST_P(BothPaths, AesFips197)
{
    bool fast = GetParam();
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"), fast);
    auto block = fromHexStr("00112233445566778899aabbccddeeff");
    aes.encryptBlock(block.data());
    EXPECT_EQ(block, fromHexStr("69c4e0d86a7b0430d8cdb78070b4c55a"));
    aes.decryptBlock(block.data());
    EXPECT_EQ(block, fromHexStr("00112233445566778899aabbccddeeff"));
}

TEST_P(BothPaths, AesNistEcb)
{
    bool fast = GetParam();
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"), fast);
    const char *vec[][2] = {
        {"6bc1bee22e409f96e93d7e117393172a",
         "3ad77bb40d7a3660a89ecaf32466ef97"},
        {"ae2d8a571e03ac9c9eb76fac45af8e51",
         "f5d3d58503b9699de785895a96fdbaaf"},
        {"30c81c46a35ce411e5fbc1191a0a52ef",
         "43b1cd7f598ece23881b00e3ed030688"},
        {"f69f2445df4f9b17ad2b417be66c3710",
         "7b0c785e27e8ad3f8223207104725dd4"},
    };
    for (auto &v : vec) {
        auto block = fromHexStr(v[0]);
        aes.encryptBlock(block.data());
        EXPECT_EQ(block, fromHexStr(v[1]));
        aes.decryptBlock(block.data());
        EXPECT_EQ(block, fromHexStr(v[0]));
    }
}

TEST_P(BothPaths, Sha256Nist)
{
    bool fast = GetParam();
    EXPECT_EQ(toHex(Sha256::hash("", 0, fast)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(toHex(Sha256::hash("abc", 3, fast)),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    const char *two = "abcdbcdecdefdefgefghfghighijhijkijkljklm"
                      "klmnlmnomnopnopq";
    EXPECT_EQ(toHex(Sha256::hash(two, std::strlen(two), fast)),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
    // 56 bytes: the padding tail spills into a second block.
    std::string fiftysix(56, 'a');
    EXPECT_EQ(Sha256::hash(fiftysix.data(), fiftysix.size(), fast),
              Sha256::hash(fiftysix.data(), fiftysix.size(), !fast));
}

TEST_P(BothPaths, HmacRfc4231)
{
    bool fast = GetParam();
    {
        std::vector<uint8_t> key(20, 0x0b);
        EXPECT_EQ(toHex(hmacSha256(key, "Hi There", 8, fast)),
                  "b0344c61d8db38535ca8afceaf0bf12b"
                  "881dc200c9833da726e9376c2e32cff7");
    }
    {
        std::vector<uint8_t> key = {'J', 'e', 'f', 'e'};
        const char *data = "what do ya want for nothing?";
        EXPECT_EQ(toHex(hmacSha256(key, data, std::strlen(data), fast)),
                  "5bdcc146bf60754e6a042426089575c7"
                  "5a003f089d2739839dec58b964ec3843");
    }
    {
        std::vector<uint8_t> key(131, 0xaa);
        const char *data = "Test Using Larger Than Block-Size Key - "
                           "Hash Key First";
        EXPECT_EQ(toHex(hmacSha256(key, data, std::strlen(data), fast)),
                  "60e431591ee0b67f0d8a26aacbf5b77f"
                  "8e0bc6213728c5140546040f0ee37f54");
    }
}

TEST_P(BothPaths, HmacClassMatchesFreeFunction)
{
    bool fast = GetParam();
    for (size_t key_len : {0u, 4u, 20u, 64u, 131u}) {
        std::vector<uint8_t> key(key_len, 0x0b);
        HmacSha256 ctx(key, fast);
        std::vector<uint8_t> data(200);
        for (size_t i = 0; i < data.size(); i++)
            data[i] = uint8_t(i);
        EXPECT_EQ(ctx.mac(data),
                  hmacSha256(key, data.data(), data.size(), fast));
        // Streaming via begin()/finish() over two chunks.
        Sha256 inner = ctx.begin();
        inner.update(data.data(), 100);
        inner.update(data.data() + 100, data.size() - 100);
        EXPECT_EQ(ctx.finish(inner),
                  hmacSha256(key, data.data(), data.size(), fast));
    }
}

INSTANTIATE_TEST_SUITE_P(ReferenceAndFast, BothPaths,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "fast" : "reference";
                         });
