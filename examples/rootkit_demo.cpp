/**
 * @file
 * The S 7 security experiments as a demo: a malicious kernel module
 * attacks ssh-agent on the baseline kernel and then under Virtual
 * Ghost. Both the direct-read rootkit and the signal-handler
 * code-injection exploit steal the secret on the baseline; both fail
 * under VG while the agent keeps running.
 *
 *   $ ./build/examples/rootkit_demo
 */

#include <cstdio>

#include "apps/ssh_common.hh"
#include "attacks/rootkit.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::apps;
using namespace vg::attacks;

namespace
{

const std::string kSecret = "GHOST-SECRET-KEY";

void
runScenario(const char *title, sim::VgConfig cfg, bool ghost_malloc,
            int which_attack)
{
    std::printf("\n--- %s ---\n", title);
    SystemConfig sys_cfg;
    sys_cfg.vg = cfg;
    sys_cfg.memFrames = 8192;
    sys_cfg.diskBlocks = 8192;
    System sys(sys_cfg);
    sys.boot();

    AgentConfig agent_cfg;
    agent_cfg.secret = kSecret;
    agent_cfg.useGhostMemory = ghost_malloc;
    agent_cfg.maxRequests = 0;
    agent_cfg.idleSpins = 30;

    uint64_t agent_pid = sys.kernel().spawn(
        "ssh-agent",
        [&](UserApi &api) { return sshAgent(api, agent_cfg); });

    sys.kernel().spawn("attacker", [&, agent_pid](UserApi &api) {
        while (agentSecretAddress() == 0)
            api.yield();
        uint64_t va = agentSecretAddress();
        std::printf("attacker: victim pid %lu, secret at %#lx (%s "
                    "memory)\n",
                    (unsigned long)agent_pid, (unsigned long)va,
                    ghost_malloc ? "ghost" : "traditional");
        if (which_attack == 1) {
            std::string err;
            if (!mountAttack1(api.kernel(), va, &err))
                std::printf("attacker: mount failed: %s\n",
                            err.c_str());
        } else {
            AttackResult r = mountAttack2(api.kernel(), agent_pid, va,
                                          kSecret.size());
            std::printf("attacker: %s\n", r.detail.c_str());
        }
        return 0;
    });

    sys.kernel().run();

    std::vector<uint8_t> secret(kSecret.begin(), kSecret.end());
    AttackResult outcome =
        which_attack == 1 ? checkAttack1(sys.kernel(), secret)
                          : checkAttack2(sys.kernel(), secret);
    int agent_exit = sys.kernel().exitCodes().at(agent_pid);

    std::printf("result: %s\n", outcome.detail.c_str());
    std::printf("agent exit code: %d (%s)\n", agent_exit,
                agent_exit == 0 ? "unaffected" : "disturbed");
    std::printf("verdict: secret %s\n",
                outcome.dataStolen ? "STOLEN" : "SAFE");
    if (sys.vm().violationCount() > 0)
        std::printf("VM blocked %lu forbidden operations\n",
                    (unsigned long)sys.vm().violationCount());
}

} // namespace

int
main()
{
    std::printf("Reproducing the paper's S 7 rootkit experiments "
                "(malicious read()\nhandler and signal-dispatch code "
                "injection vs ssh-agent).\n");

    runScenario("Attack 1 (direct read), baseline kernel",
                sim::VgConfig::native(), false, 1);
    runScenario("Attack 1 (direct read), Virtual Ghost",
                sim::VgConfig::full(), true, 1);
    runScenario("Attack 2 (code injection), baseline kernel",
                sim::VgConfig::native(), false, 2);
    runScenario("Attack 2 (code injection), Virtual Ghost",
                sim::VgConfig::full(), true, 2);

    std::printf("\nAs in the paper: both attacks succeed on the "
                "baseline kernel and fail\nunder Virtual Ghost, with "
                "ssh-agent continuing execution unaffected.\n");
    return 0;
}
