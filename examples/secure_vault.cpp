/**
 * @file
 * Secure vault: a ghosting application keeps its working set in ghost
 * memory and persists secrets with encrypt-then-MAC files under its
 * application key (S 3.3/S 4.4). The demo then plays the hostile OS:
 * it greps the raw disk for the plaintext and tampers with the file,
 * showing confidentiality and integrity hold.
 *
 *   $ ./build/examples/secure_vault
 */

#include <cstdio>
#include <cstring>

#include "ghost/runtime.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

int
main()
{
    System sys;
    sys.boot();

    // Install-time: package the app with its key; the key section in
    // the binary is RSA-encrypted to the VM.
    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(0xa0 + i);
    sva::AppBinary binary =
        sys.vm().packageApp("vault", "vault-code-v1", app_key);

    const std::string secret =
        "master password: correct horse battery staple";

    // 1. The vault application stores the secret.
    int code = sys.runProcess("vault", [&](UserApi &api) {
        return api.execve(&binary, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            if (!rt.appKey())
                return 1;

            // Working copy lives in ghost memory.
            hw::Vaddr gva = rt.stashSecret(std::vector<uint8_t>(
                secret.begin(), secret.end()));
            std::printf("vault: secret staged in ghost memory at "
                        "%#lx\n",
                        (unsigned long)gva);

            // Persist through the hostile OS.
            if (!rt.writeSecureFile(
                    "/vault.db", std::vector<uint8_t>(secret.begin(),
                                                      secret.end())))
                return 2;
            std::printf("vault: sealed to /vault.db\n");
            return 0;
        });
    });
    if (code != 0) {
        std::printf("vault failed: %d\n", code);
        return 1;
    }

    // 2. The hostile OS inspects the raw file: ciphertext only.
    Ino ino = 0;
    sys.kernel().fs().lookup("/vault.db", ino);
    FileStat st;
    sys.kernel().fs().stat(ino, st);
    std::vector<uint8_t> raw(st.size);
    sys.kernel().fs().read(ino, 0, raw.data(), st.size);
    std::string raw_str(raw.begin(), raw.end());
    std::printf("OS view of /vault.db: %zu bytes, plaintext %s\n",
                raw.size(),
                raw_str.find(secret) == std::string::npos
                    ? "NOT findable"
                    : "LEAKED!");

    // 3. Reading it back works...
    sys.runProcess("reader", [&](UserApi &api) {
        return api.execve(&binary, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> plain;
            if (rt.readSecureFile("/vault.db", plain) &&
                std::string(plain.begin(), plain.end()) == secret)
                std::printf("vault: read-back OK\n");
            else
                std::printf("vault: read-back FAILED\n");
            return 0;
        });
    });

    // 4. ...until the OS tampers with a byte.
    uint8_t byte = 0;
    sys.kernel().fs().read(ino, 52, &byte, 1);
    byte ^= 0x80;
    sys.kernel().fs().write(ino, 52, &byte, 1);
    std::printf("OS flips one ciphertext bit...\n");

    sys.runProcess("reader2", [&](UserApi &api) {
        return api.execve(&binary, [&](UserApi &napi) {
            ghost::GhostRuntime rt(napi);
            std::vector<uint8_t> plain;
            if (!rt.readSecureFile("/vault.db", plain))
                std::printf("vault: tampering DETECTED, refusing the "
                            "data\n");
            else
                std::printf("vault: tampering NOT detected (bad!)\n");
            return 0;
        });
    });

    // 5. A forged binary cannot impersonate the app to get the key.
    sva::AppBinary forged = binary;
    forged.codeIdentity = "trojan-code";
    int forged_code = sys.runProcess("trojan", [&](UserApi &api) {
        return api.execve(&forged, [](UserApi &) { return 0; });
    });
    std::printf("forged binary exec: %s\n",
                forged_code == -1 ? "refused by the VM (S 4.5)"
                                  : "ran (bad!)");
    return 0;
}
