/**
 * @file
 * The full OpenSSH scenario of S 6: ssh-keygen creates app-key-
 * encrypted authentication keys, ssh-agent signs a challenge from its
 * ghost-memory key store, and the ghosting ssh client fetches a file
 * from sshd over the authenticated, encrypted vgssh transport.
 *
 *   $ ./build/examples/ssh_transfer
 */

#include <cstdio>

#include "apps/ssh_common.hh"
#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;
using namespace vg::apps;

int
main()
{
    System sys;
    sys.boot();

    // One shared application key across the suite, as in the paper.
    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(0x60 + i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "openssh-6.2p1", app_key);

    // Server-side content.
    Ino ino = 0;
    sys.kernel().fs().create("/srv_data.bin", ino);
    std::vector<uint8_t> payload(256 * 1024);
    for (size_t i = 0; i < payload.size(); i++)
        payload[i] = uint8_t(i * 131);
    sys.kernel().fs().write(ino, 0, payload.data(), payload.size());

    int exit_code = sys.runProcess("init", [&](UserApi &api) {
        // ssh-keygen.
        uint64_t kg = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);
        std::printf("ssh-keygen: %s (auth key encrypted with the app "
                    "key on disk)\n",
                    status == 0 ? "ok" : "FAILED");
        if (status != 0)
            return 1;

        // ssh-agent holding keys in ghost memory.
        uint64_t agent = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [](UserApi &napi) {
                AgentConfig cfg;
                cfg.maxRequests = 1;
                return sshAgent(napi, cfg);
            });
        });

        // sshd.
        uint64_t srv = api.fork([](UserApi &capi) {
            SshdConfig cfg;
            cfg.maxConnections = 1;
            return sshd(capi, cfg);
        });
        for (int i = 0; i < 6; i++)
            api.yield();

        // Ask the agent to sign something (client-side usage).
        int afd = api.connect(agentPort);
        if (afd >= 0) {
            sendStr(api, afd, "SIGN example-session-id");
            std::vector<uint8_t> sig;
            if (recvMsg(api, afd, sig))
                std::printf("ssh-agent: signed a challenge (%zu-byte "
                            "signature) from ghost-resident keys\n",
                            sig.size());
            sendStr(api, afd, "QUIT");
            api.close(afd);
        }

        // Ghosting ssh fetch.
        uint64_t cli = api.fork([&](UserApi &capi) {
            return capi.execve(&bin, [&](UserApi &napi) {
                sim::Stopwatch sw(napi.kernel().ctx().clock());
                SshResult r = sshFetch(napi, "/srv_data.bin",
                                       /*ghosting=*/true,
                                       /*keep_data=*/true);
                double ms = sim::Clock::toUsec(sw.elapsed()) / 1000.0;
                if (!r.ok)
                    return 1;
                bool match = r.data == std::vector<uint8_t>(
                                           payload.begin(),
                                           payload.end());
                std::printf("ssh: fetched %lu bytes in %.2f ms "
                            "(simulated), contents %s\n",
                            (unsigned long)r.bytes, ms,
                            match ? "verified" : "MISMATCH");
                return match ? 0 : 2;
            });
        });
        int cstatus = -1;
        api.waitpid(cli, cstatus);
        api.waitpid(srv, status);
        api.waitpid(agent, status);
        return cstatus;
    });

    std::printf("scenario exit: %d; ghost pages used: %lu\n",
                exit_code,
                (unsigned long)sys.ctx().stats().get(
                    "sva.ghost_pages_allocated"));
    return exit_code;
}
