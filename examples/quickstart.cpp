/**
 * @file
 * Quickstart: boot a Virtual Ghost machine, run a process, allocate
 * ghost memory, and watch the kernel fail to read it.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "kernel/system.hh"

using namespace vg;
using namespace vg::kern;

int
main()
{
    // 1. Build and boot a machine: TPM-rooted Virtual Ghost VM,
    //    mini-FreeBSD kernel, SSD, loopback network.
    SystemConfig cfg;
    cfg.memFrames = 8192;  // 32 MB RAM
    cfg.diskBlocks = 8192; // 32 MB SSD
    System sys(cfg);
    sys.boot();
    std::printf("booted: %lu frames RAM, %lu disk blocks, VG "
                "public key %zu bits\n",
                (unsigned long)sys.mem().numFrames(),
                (unsigned long)sys.disk().numBlocks(),
                sys.vm().publicKey().n.bitLength());

    // 2. Run a process that stores a secret in ghost memory.
    hw::Vaddr secret_va = 0;
    sys.runProcess("demo", [&](UserApi &api) {
        // Ordinary syscalls work as expected.
        int fd = api.open("/hello.txt", true);
        hw::Vaddr buf = api.mmap(4096);
        api.copyToUser(buf, "hello ghost", 11);
        api.write(fd, buf, 11);
        api.close(fd);

        // Ghost memory: allocgm() via the VM; invisible to the OS.
        secret_va = api.allocGhost(1);
        const char *secret = "ATTACK AT DAWN";
        api.ghostWrite(secret_va, secret, std::strlen(secret));

        char back[32] = {};
        api.ghostRead(secret_va, back, std::strlen(secret));
        std::printf("application reads its ghost memory: \"%s\"\n",
                    back);

        // The kernel's own (instrumented) loads deflect away.
        uint64_t kernel_view = 0;
        api.kernel().kmem().kread(secret_va, 8, kernel_view);
        uint64_t truth = 0;
        std::memcpy(&truth, secret, 8);
        std::printf("kernel load at the same address sees: %#lx "
                    "(actual secret starts %#lx) -> %s\n",
                    (unsigned long)kernel_view, (unsigned long)truth,
                    kernel_view == truth ? "LEAKED!" : "deflected");

        api.freeGhost(secret_va, 1);
        return 0;
    });

    // 3. Simulated-time accounting.
    std::printf("\nsimulated time: %.3f ms; stats:\n",
                sim::Clock::toUsec(sys.ctx().clock().now()) / 1000.0);
    for (const auto &[name, value] : sys.ctx().stats().all()) {
        if (name.rfind("sva.", 0) == 0 ||
            name.rfind("kmem.", 0) == 0)
            std::printf("  %-32s %lu\n", name.c_str(),
                        (unsigned long)value);
    }
    return 0;
}
